package storage

import (
	"sync"
	"testing"

	"dsidx/internal/series"
)

func newTestReader(t *testing.T, n, length int, opt DiskReaderOptions) (*DiskReader, *series.Collection) {
	t.Helper()
	coll := makeCollection(n, length)
	f, err := WriteCollection(NewMemStore(), coll)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewDiskReader(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r, coll
}

func TestDiskReaderMatchesCollection(t *testing.T) {
	// A budget of 2 blocks over 100 series forces constant eviction; every
	// series must still read back exactly, in any access order.
	r, coll := newTestReader(t, 100, 16, DiskReaderOptions{BlockSeries: 8, CacheBytes: 2 * 8 * 16 * 4})
	if r.Len() != coll.Len() || r.SeriesLen() != coll.SeriesLen() {
		t.Fatalf("shape = (%d,%d), want (%d,%d)", r.Len(), r.SeriesLen(), coll.Len(), coll.SeriesLen())
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < coll.Len(); i++ {
			// Alternate direction so the second pass runs anti-LRU.
			j := i
			if pass == 1 {
				j = coll.Len() - 1 - i
			}
			got, want := r.At(j), coll.At(j)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("pass %d series %d differs at %d: %v != %v", pass, j, k, got[k], want[k])
				}
			}
		}
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Error("2-block budget over 13 blocks evicted nothing")
	}
	if st.ResidentBytes > st.CacheBytes {
		t.Errorf("resident %d exceeds budget %d", st.ResidentBytes, st.CacheBytes)
	}
}

func TestDiskReaderCacheCounters(t *testing.T) {
	r, _ := newTestReader(t, 64, 8, DiskReaderOptions{BlockSeries: 16})
	// First touch of a block: miss. Same block again: hits.
	r.At(0)
	r.At(1)
	r.At(15)
	r.At(16) // second block
	st := r.Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d with default budget", st.Evictions)
	}
}

func TestDiskReaderBudgetClamp(t *testing.T) {
	// A budget below one block is raised to one block, so a load can never
	// evict the block it is returning.
	r, coll := newTestReader(t, 32, 8, DiskReaderOptions{BlockSeries: 16, CacheBytes: 1})
	if want := int64(16 * 8 * 4); r.Stats().CacheBytes != want {
		t.Fatalf("CacheBytes = %d, want clamped %d", r.Stats().CacheBytes, want)
	}
	for i := 0; i < coll.Len(); i++ {
		if got, want := r.At(i), coll.At(i); got[0] != want[0] {
			t.Fatalf("series %d = %v, want %v", i, got[0], want[0])
		}
	}
}

func TestDiskReaderPrefetch(t *testing.T) {
	r, _ := newTestReader(t, 64, 8, DiskReaderOptions{BlockSeries: 8})
	r.Prefetch([]int32{0, 1, 2, 9, 10, 40})
	st := r.Stats()
	if st.Misses != 3 {
		t.Fatalf("prefetch loaded %d blocks, want 3", st.Misses)
	}
	// The prefetched series are now hits.
	r.At(0)
	r.At(9)
	r.At(40)
	if st = r.Stats(); st.Misses != 3 || st.Hits < 3 {
		t.Fatalf("post-prefetch reads: hits %d misses %d, want ≥3 hits and no new misses", st.Hits, st.Misses)
	}
}

// TestDiskReaderSingleFlight hammers one cold region from many goroutines:
// values must come back correct and each block must be read off the device
// exactly once (misses == block count despite the concurrency).
func TestDiskReaderSingleFlight(t *testing.T) {
	const n, length, blockSeries = 256, 8, 16
	coll := makeCollection(n, length)
	disk := NewDisk(NewMemStore(), Unthrottled)
	f, err := WriteCollection(disk, coll)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewDiskReader(f, DiskReaderOptions{BlockSeries: blockSeries})
	if err != nil {
		t.Fatal(err)
	}
	disk.ResetMetrics() // drop the staging writes; count only cache loads

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if got, want := r.At(i), coll.At(i); got[3] != want[3] {
					t.Errorf("series %d = %v, want %v", i, got[3], want[3])
					return
				}
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if want := uint64(n / blockSeries); st.Misses != want {
		t.Fatalf("misses = %d under 8 readers, want %d (single-flight)", st.Misses, want)
	}
	if ops := disk.Metrics().ReadOps; ops != int64(n/blockSeries) {
		t.Fatalf("device read ops = %d, want %d", ops, n/blockSeries)
	}
}

// TestDiskReaderDifferentialFileStore reads the same collection through a
// DiskReader over a FileStore and over a MemStore: every series must be
// bit-identical to the source — the float32 → LE bytes → float32 round trip
// is exact on both backends.
func TestDiskReaderDifferentialFileStore(t *testing.T) {
	coll := makeCollection(50, 24)
	fs, err := OpenFileStore(t.TempDir() + "/series.dsf")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	readers := make([]*DiskReader, 2)
	for i, store := range []Store{fs, Store(NewMemStore())} {
		f, err := WriteCollection(store, coll)
		if err != nil {
			t.Fatal(err)
		}
		readers[i], err = NewDiskReader(f, DiskReaderOptions{BlockSeries: 7, CacheBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < coll.Len(); i++ {
		want := coll.At(i)
		a, b := readers[0].At(i), readers[1].At(i)
		for k := range want {
			if a[k] != want[k] || b[k] != want[k] {
				t.Fatalf("series %d point %d: file %v, mem %v, want %v", i, k, a[k], b[k], want[k])
			}
		}
	}
}
