package storage

// CacheStats-snapshot consistency under concurrency (run with -race): the
// pre-fix counters were independent atomics bumped at different points,
// so a snapshot could observe Evictions > Misses or ResidentBytes out of
// step with the counted blocks. Stats now cuts all fields under the cache
// lock; this suite hammers that cut while readers thrash a tiny cache.

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCacheStatsConsistentUnderConcurrentReads(t *testing.T) {
	const n, length = 256, 16
	// Budget of 2 blocks over 16 forces constant misses and evictions.
	r, _ := newTestReader(t, n, length, DiskReaderOptions{BlockSeries: 16, CacheBytes: 2 * 16 * length * 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Opposing strides so the two readers fight over the LRU.
				pos := i % n
				if w == 1 {
					pos = n - 1 - pos
				}
				r.At(pos)
			}
		}()
	}

	dur := 1 * time.Second
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var prev CacheStats
	for k := 0; ; k++ {
		if k%64 == 0 {
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched() // one CPU: let the readers interleave
		}
		st := r.Stats()
		// Every eviction was once a miss; a torn snapshot can invert that.
		if st.Evictions > st.Misses {
			t.Fatalf("sample %d: Evictions %d > Misses %d", k, st.Evictions, st.Misses)
		}
		if st.ResidentBytes < 0 || st.ResidentBytes > st.CacheBytes {
			t.Fatalf("sample %d: ResidentBytes %d outside [0,%d]", k, st.ResidentBytes, st.CacheBytes)
		}
		if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Evictions < prev.Evictions {
			t.Fatalf("sample %d: counter regressed: %+v after %+v", k, st, prev)
		}
		prev = st
	}
	close(stop)
	wg.Wait()

	st := r.Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("thrashing run saw no misses/evictions: %+v", st)
	}
	if rate := st.HitRate(); rate < 0 || rate > 1 {
		t.Fatalf("HitRate %v outside [0,1]", rate)
	}
}
