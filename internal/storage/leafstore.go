package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// LeafStore persists materialized index leaves: ParIS's IndexConstruction
// workers "flush the leaves of each subtree to the disk at the end of the
// tree construction process" (paper §III). Each leaf is an opaque blob
// (serialized summaries + raw-data positions); the in-memory tree keeps a
// LeafRef so query answering can load a leaf back on demand.
//
// Appends from concurrent construction workers are serialized by a mutex —
// the device would serialize them anyway.
type LeafStore struct {
	store Store

	mu  sync.Mutex
	end int64
}

// LeafRef locates a flushed leaf blob.
type LeafRef struct {
	Offset int64
	Len    int32
}

// NewLeafStore returns a LeafStore appending from the current store end.
func NewLeafStore(store Store) *LeafStore {
	return &LeafStore{store: store, end: store.Size()}
}

// Append writes one leaf blob (length-prefixed) and returns its reference.
// The write happens under the mutex as a single device operation at the
// next sequential offset, modeling an append-only leaf log behind a
// buffered writer — concurrent flush workers produce one sequential write
// stream, exactly like the real systems' leaf materialization.
func (l *LeafStore) Append(blob []byte) (LeafRef, error) {
	rec := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(blob)))
	copy(rec[4:], blob)

	l.mu.Lock()
	defer l.mu.Unlock()
	off := l.end
	if _, err := l.store.WriteAt(rec, off); err != nil {
		return LeafRef{}, fmt.Errorf("storage: leaf append: %w", err)
	}
	l.end += int64(len(rec))
	return LeafRef{Offset: off, Len: int32(len(blob))}, nil
}

// Read loads a leaf blob back with a single device read, verifying the
// length prefix against the reference.
func (l *LeafStore) Read(ref LeafRef) ([]byte, error) {
	// A LeafRef decoded from persisted bytes can be arbitrary garbage: a
	// negative Len would panic in make below, a negative Offset in ReadAt,
	// and a record past the store end cannot be valid. Decode paths must
	// return ErrCorrupt, never panic — the invariant the format fuzzers pin.
	// (Subtraction, not ref.Offset+4+Len > Size: a forged offset near
	// MaxInt64 would wrap the addition negative and slip through.)
	if ref.Len < 0 || ref.Offset < 0 || ref.Offset > l.store.Size()-4-int64(ref.Len) {
		return nil, corruptf("leaf ref {offset %d, len %d} invalid for store of %d bytes",
			ref.Offset, ref.Len, l.store.Size())
	}
	rec := make([]byte, 4+ref.Len)
	if _, err := l.store.ReadAt(rec, ref.Offset); err != nil {
		return nil, corruptf("leaf record at %d: %v", ref.Offset, err)
	}
	if got := int32(binary.LittleEndian.Uint32(rec[:4])); got != ref.Len {
		return nil, corruptf("leaf at %d: size prefix %d != ref %d", ref.Offset, got, ref.Len)
	}
	return rec[4:], nil
}
