package storage

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dsidx/internal/series"
)

// DiskReader serves a series collection straight off a device through a
// fixed-budget block cache, implementing series.Reader so an index builds
// over and refines against cold data with no index-side changes — the
// out-of-core tier behind shard.Options.ColdStorage. The tree, SAX
// summaries and any materialized hot leaf blocks stay resident in RAM;
// only the base values live on the device.
//
// The cache holds aligned runs of BlockSeries consecutive series (LRU over
// whole blocks, bounded by CacheBytes), so one device read amortizes over a
// run and repeated refinement of hot leaves does not pay device time twice.
// Loads are single-flight: concurrent At calls — and prefetch tasks racing
// the refinement that wanted the data — for the same cold block share one
// batched device read.
//
// At returns slices into cached blocks; eviction only drops the cache's
// reference, so values a caller still holds stay valid (the Reader contract:
// retainers must copy). A device I/O error in At fails the access, not the
// process: transient faults are retried with capped exponential backoff per
// the reader's RetryPolicy, and on exhaustion (or a permanent fault) At
// panics with a typed *BlockError — the Reader surface has no error channel,
// so the error rides a panic that the engine's task boundaries recover into
// a per-query error. Nothing poisons the cache: a failed block is dropped,
// so a later access retries the device.
type DiskReader struct {
	file        *SeriesFile
	count       int
	length      int
	blockSeries int
	budget      int64
	retry       RetryPolicy

	// The counters live under mu with the block map, so a Stats snapshot
	// is one consistent cut of the cache: a resident block's miss is
	// always counted in the same snapshot that sees it resident. (They
	// were previously bumped outside the lock, which let a snapshot see
	// the block before its miss.)
	mu                      sync.Mutex
	hits, misses, evictions uint64
	retries                 uint64
	transient, permanent    uint64
	blocks                  map[int]*cacheBlock
	lru                     cacheBlock // sentinel: lru.next is most recent, lru.prev least
	resident                int64
}

// DefaultCacheBytes and DefaultBlockSeries are the DiskReaderOptions zero
// defaults: a 4 MiB budget over 64-series blocks.
const (
	DefaultCacheBytes  = 4 << 20
	DefaultBlockSeries = 64
)

// RetryPolicy governs how a DiskReader re-reads a block after a transient
// device fault: up to MaxRetries re-reads, sleeping Backoff before the
// first and doubling up to MaxBackoff between attempts. Permanent faults
// and unclassified errors are never retried — only failures the store
// explicitly marked transient (see IsTransient).
type RetryPolicy struct {
	// MaxRetries is the number of re-reads after the first failure
	// (0 means DefaultMaxRetries; negative disables retries).
	MaxRetries int
	// Backoff is the sleep before the first retry (0 means
	// DefaultBackoff); it doubles per attempt, capped at MaxBackoff
	// (0 means DefaultMaxBackoff).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep, letting tests run backoff schedules
	// instantly while still observing them.
	Sleep func(time.Duration)
}

// Retry policy zero-value defaults: three quick retries spanning ~7 ms.
const (
	DefaultMaxRetries = 3
	DefaultBackoff    = time.Millisecond
	DefaultMaxBackoff = 50 * time.Millisecond
)

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// DiskReaderOptions sizes the block cache and configures fault handling.
type DiskReaderOptions struct {
	// CacheBytes is the cache budget in bytes of decoded values (0 means
	// DefaultCacheBytes). The budget is raised to at least one block.
	CacheBytes int64
	// BlockSeries is the number of consecutive series per cached block —
	// the device-read batch size (0 means DefaultBlockSeries).
	BlockSeries int
	// Retry governs transient-fault re-reads (zero value means the
	// defaults; MaxRetries < 0 disables retrying).
	Retry RetryPolicy
}

// CacheStats is a snapshot of the block cache's counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	ResidentBytes int64
	CacheBytes    int64
	BlockSeries   int
	// Retries counts block re-reads after transient faults;
	// TransientFaults and PermanentFaults count block loads that failed
	// with each class after retries were exhausted (or skipped).
	Retries         uint64
	TransientFaults uint64
	PermanentFaults uint64
}

// HitRate returns hits/(hits+misses), 0 before any access.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BlockError is the typed panic payload of a DiskReader access that failed
// after retries: the block, the fault class of the final attempt, and the
// underlying error. The engine's task boundaries recover it into a
// per-query error; the shard layer classifies it (permanent faults drive
// quarantine, transient ones do not).
type BlockError struct {
	Block int
	Class FaultClass
	Err   error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("storage: disk reader block %d (%s): %v", e.Block, e.Class, e.Err)
}

func (e *BlockError) Unwrap() error { return e.Err }

// cacheBlock is one aligned run of decoded series. vals and err are written
// by the single loading goroutine before ready closes and only read after
// it, so waiters need no lock.
type cacheBlock struct {
	idx        int
	bytes      int64
	vals       []float32
	err        *BlockError
	ready      chan struct{}
	prev, next *cacheBlock
}

// NewDiskReader wraps an open series file in a block cache.
func NewDiskReader(f *SeriesFile, opt DiskReaderOptions) (*DiskReader, error) {
	if f.Count() > math.MaxInt32 {
		return nil, fmt.Errorf("storage: %d series exceed int32 positions", f.Count())
	}
	if opt.BlockSeries <= 0 {
		opt.BlockSeries = DefaultBlockSeries
	}
	if opt.CacheBytes <= 0 {
		opt.CacheBytes = DefaultCacheBytes
	}
	r := &DiskReader{
		file:        f,
		count:       int(f.Count()),
		length:      f.Length(),
		blockSeries: opt.BlockSeries,
		budget:      opt.CacheBytes,
		retry:       opt.Retry.normalize(),
		blocks:      make(map[int]*cacheBlock),
	}
	// The block being returned must be cacheable, or every access at a
	// sub-block budget would evict what it just loaded.
	if minBudget := int64(opt.BlockSeries) * int64(f.Length()) * 4; r.budget < minBudget {
		r.budget = minBudget
	}
	r.lru.prev, r.lru.next = &r.lru, &r.lru
	return r, nil
}

var (
	_ series.Reader     = (*DiskReader)(nil)
	_ series.Prefetcher = (*DiskReader)(nil)
)

// Len returns the number of series.
func (r *DiskReader) Len() int { return r.count }

// SeriesLen returns the number of points per series.
func (r *DiskReader) SeriesLen() int { return r.length }

// At returns series i, reading its block off the device if cold. The
// returned slice aliases the cached block; it stays valid after eviction
// (the backing array lives while referenced) but callers that retain it
// must copy, per the Reader contract. A device fault that survives the
// retry policy panics with *BlockError; engine task boundaries recover it
// into a per-query error.
func (r *DiskReader) At(i int) series.Series {
	b, err := r.block(i / r.blockSeries)
	if err != nil {
		panic(err)
	}
	lo := (i % r.blockSeries) * r.length
	return series.Series(b.vals[lo : lo+r.length : lo+r.length])
}

// Prefetch loads the blocks covering pos, blocking until they are resident
// — the device side of ParIS+'s I/O masking: the refinement path submits
// the NEXT candidate leaf's positions as a pool task while computing real
// distances on the current one, and single-flight loading means whichever
// side reaches a block first does the one read. Consecutive duplicate
// blocks are skipped; already-cached blocks cost a map hit. Load errors
// are swallowed: a prefetch is an optimization, and the demand access that
// actually needs the block will retry the device and surface the fault.
func (r *DiskReader) Prefetch(pos []int32) {
	last := -1
	for _, p := range pos {
		idx := int(p) / r.blockSeries
		if idx == last {
			continue
		}
		last = idx
		if _, err := r.block(idx); err != nil {
			return
		}
	}
}

// Stats snapshots the cache counters — one consistent cut under the
// cache lock, so Evictions never exceeds Misses, ResidentBytes matches
// the counted blocks, and monotonic counters never regress between
// snapshots.
func (r *DiskReader) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{
		Hits:            r.hits,
		Misses:          r.misses,
		Evictions:       r.evictions,
		ResidentBytes:   r.resident,
		CacheBytes:      r.budget,
		BlockSeries:     r.blockSeries,
		Retries:         r.retries,
		TransientFaults: r.transient,
		PermanentFaults: r.permanent,
	}
}

// block returns block idx, loading it once no matter how many goroutines
// ask: the miss path installs a not-yet-ready entry under the lock, loads
// outside it, and closes ready; concurrent callers find the entry and wait.
// A failed load is reported to the loader and every waiter alike, and the
// entry is dropped so the next access re-reads the device.
func (r *DiskReader) block(idx int) (*cacheBlock, error) {
	r.mu.Lock()
	if b, ok := r.blocks[idx]; ok {
		r.moveToFront(b)
		r.hits++
		r.mu.Unlock()
		<-b.ready
		if b.err != nil {
			return nil, b.err
		}
		return b, nil
	}
	start := idx * r.blockSeries
	n := min(r.blockSeries, r.count-start)
	b := &cacheBlock{
		idx:   idx,
		bytes: int64(n) * int64(r.length) * 4,
		ready: make(chan struct{}),
	}
	r.blocks[idx] = b
	r.pushFront(b)
	r.resident += b.bytes
	r.misses++
	r.evictLocked(b)
	r.mu.Unlock()

	buf := make([]byte, n*r.length*4)
	if err := r.load(buf, int64(start)); err != nil {
		class := FaultPermanent
		if IsTransient(err) {
			class = FaultTransient
		}
		b.err = &BlockError{Block: idx, Class: class, Err: err}
		r.mu.Lock()
		if class == FaultTransient {
			r.transient++
		} else {
			r.permanent++
		}
		// Drop the failed entry (unless eviction already did, or a later
		// miss replaced it) so a retry re-reads the device.
		if r.blocks[idx] == b {
			delete(r.blocks, idx)
			r.unlink(b)
			r.resident -= b.bytes
		}
		r.mu.Unlock()
		close(b.ready)
		return nil, b.err
	}
	b.vals = make([]float32, n*r.length)
	DecodeFloat32(b.vals, buf)
	close(b.ready)
	return b, nil
}

// load performs the device read with the retry policy: transient faults
// are re-read up to MaxRetries times under capped exponential backoff;
// anything else fails immediately.
func (r *DiskReader) load(buf []byte, start int64) error {
	backoff := r.retry.Backoff
	for attempt := 0; ; attempt++ {
		err := r.file.ReadBatchBytesInto(buf, start)
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= r.retry.MaxRetries {
			return err
		}
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
		r.retry.Sleep(backoff)
		if backoff *= 2; backoff > r.retry.MaxBackoff {
			backoff = r.retry.MaxBackoff
		}
	}
}

// evictLocked drops least-recently-used blocks until the budget holds,
// never evicting keep (the block the caller is about to return). Evicting
// a block that is still loading is safe: its loader and waiters hold their
// own reference; only the cache forgets it.
func (r *DiskReader) evictLocked(keep *cacheBlock) {
	for r.resident > r.budget {
		b := r.lru.prev
		if b == &r.lru || b == keep {
			return
		}
		delete(r.blocks, b.idx)
		r.unlink(b)
		r.resident -= b.bytes
		r.evictions++
	}
}

func (r *DiskReader) pushFront(b *cacheBlock) {
	b.prev, b.next = &r.lru, r.lru.next
	b.prev.next, b.next.prev = b, b
}

func (r *DiskReader) unlink(b *cacheBlock) {
	b.prev.next, b.next.prev = b.next, b.prev
	b.prev, b.next = nil, nil
}

func (r *DiskReader) moveToFront(b *cacheBlock) {
	if r.lru.next == b {
		return
	}
	b.prev.next, b.next.prev = b.next, b.prev
	r.pushFront(b)
}
