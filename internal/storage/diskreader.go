package storage

import (
	"fmt"
	"math"
	"sync"

	"dsidx/internal/series"
)

// DiskReader serves a series collection straight off a device through a
// fixed-budget block cache, implementing series.Reader so an index builds
// over and refines against cold data with no index-side changes — the
// out-of-core tier behind shard.Options.ColdStorage. The tree, SAX
// summaries and any materialized hot leaf blocks stay resident in RAM;
// only the base values live on the device.
//
// The cache holds aligned runs of BlockSeries consecutive series (LRU over
// whole blocks, bounded by CacheBytes), so one device read amortizes over a
// run and repeated refinement of hot leaves does not pay device time twice.
// Loads are single-flight: concurrent At calls — and prefetch tasks racing
// the refinement that wanted the data — for the same cold block share one
// batched device read.
//
// At returns slices into cached blocks; eviction only drops the cache's
// reference, so values a caller still holds stay valid (the Reader contract:
// retainers must copy). A device I/O error in At panics: the Reader surface
// has no error channel, the simulated stores cannot fail, and on a real
// FileStore a read error under an index is not recoverable mid-query.
type DiskReader struct {
	file        *SeriesFile
	count       int
	length      int
	blockSeries int
	budget      int64

	// The counters live under mu with the block map, so a Stats snapshot
	// is one consistent cut of the cache: a resident block's miss is
	// always counted in the same snapshot that sees it resident. (They
	// were previously bumped outside the lock, which let a snapshot see
	// the block before its miss.)
	mu                      sync.Mutex
	hits, misses, evictions uint64
	blocks                  map[int]*cacheBlock
	lru                     cacheBlock // sentinel: lru.next is most recent, lru.prev least
	resident                int64
}

// DefaultCacheBytes and DefaultBlockSeries are the DiskReaderOptions zero
// defaults: a 4 MiB budget over 64-series blocks.
const (
	DefaultCacheBytes  = 4 << 20
	DefaultBlockSeries = 64
)

// DiskReaderOptions sizes the block cache.
type DiskReaderOptions struct {
	// CacheBytes is the cache budget in bytes of decoded values (0 means
	// DefaultCacheBytes). The budget is raised to at least one block.
	CacheBytes int64
	// BlockSeries is the number of consecutive series per cached block —
	// the device-read batch size (0 means DefaultBlockSeries).
	BlockSeries int
}

// CacheStats is a snapshot of the block cache's counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	ResidentBytes int64
	CacheBytes    int64
	BlockSeries   int
}

// HitRate returns hits/(hits+misses), 0 before any access.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheBlock is one aligned run of decoded series. vals and err are written
// by the single loading goroutine before ready closes and only read after
// it, so waiters need no lock.
type cacheBlock struct {
	idx        int
	bytes      int64
	vals       []float32
	err        error
	ready      chan struct{}
	prev, next *cacheBlock
}

// NewDiskReader wraps an open series file in a block cache.
func NewDiskReader(f *SeriesFile, opt DiskReaderOptions) (*DiskReader, error) {
	if f.Count() > math.MaxInt32 {
		return nil, fmt.Errorf("storage: %d series exceed int32 positions", f.Count())
	}
	if opt.BlockSeries <= 0 {
		opt.BlockSeries = DefaultBlockSeries
	}
	if opt.CacheBytes <= 0 {
		opt.CacheBytes = DefaultCacheBytes
	}
	r := &DiskReader{
		file:        f,
		count:       int(f.Count()),
		length:      f.Length(),
		blockSeries: opt.BlockSeries,
		budget:      opt.CacheBytes,
		blocks:      make(map[int]*cacheBlock),
	}
	// The block being returned must be cacheable, or every access at a
	// sub-block budget would evict what it just loaded.
	if minBudget := int64(opt.BlockSeries) * int64(f.Length()) * 4; r.budget < minBudget {
		r.budget = minBudget
	}
	r.lru.prev, r.lru.next = &r.lru, &r.lru
	return r, nil
}

var (
	_ series.Reader     = (*DiskReader)(nil)
	_ series.Prefetcher = (*DiskReader)(nil)
)

// Len returns the number of series.
func (r *DiskReader) Len() int { return r.count }

// SeriesLen returns the number of points per series.
func (r *DiskReader) SeriesLen() int { return r.length }

// At returns series i, reading its block off the device if cold. The
// returned slice aliases the cached block; it stays valid after eviction
// (the backing array lives while referenced) but callers that retain it
// must copy, per the Reader contract.
func (r *DiskReader) At(i int) series.Series {
	b := r.block(i / r.blockSeries)
	lo := (i % r.blockSeries) * r.length
	return series.Series(b.vals[lo : lo+r.length : lo+r.length])
}

// Prefetch loads the blocks covering pos, blocking until they are resident
// — the device side of ParIS+'s I/O masking: the refinement path submits
// the NEXT candidate leaf's positions as a pool task while computing real
// distances on the current one, and single-flight loading means whichever
// side reaches a block first does the one read. Consecutive duplicate
// blocks are skipped; already-cached blocks cost a map hit.
func (r *DiskReader) Prefetch(pos []int32) {
	last := -1
	for _, p := range pos {
		idx := int(p) / r.blockSeries
		if idx == last {
			continue
		}
		last = idx
		r.block(idx)
	}
}

// Stats snapshots the cache counters — one consistent cut under the
// cache lock, so Evictions never exceeds Misses, ResidentBytes matches
// the counted blocks, and monotonic counters never regress between
// snapshots.
func (r *DiskReader) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{
		Hits:          r.hits,
		Misses:        r.misses,
		Evictions:     r.evictions,
		ResidentBytes: r.resident,
		CacheBytes:    r.budget,
		BlockSeries:   r.blockSeries,
	}
}

// block returns block idx, loading it once no matter how many goroutines
// ask: the miss path installs a not-yet-ready entry under the lock, loads
// outside it, and closes ready; concurrent callers find the entry and wait.
func (r *DiskReader) block(idx int) *cacheBlock {
	r.mu.Lock()
	if b, ok := r.blocks[idx]; ok {
		r.moveToFront(b)
		r.hits++
		r.mu.Unlock()
		<-b.ready
		if b.err != nil {
			panic(fmt.Sprintf("storage: disk reader block %d: %v", idx, b.err))
		}
		return b
	}
	start := idx * r.blockSeries
	n := min(r.blockSeries, r.count-start)
	b := &cacheBlock{
		idx:   idx,
		bytes: int64(n) * int64(r.length) * 4,
		ready: make(chan struct{}),
	}
	r.blocks[idx] = b
	r.pushFront(b)
	r.resident += b.bytes
	r.misses++
	r.evictLocked(b)
	r.mu.Unlock()

	buf := make([]byte, n*r.length*4)
	b.err = r.file.ReadBatchBytesInto(buf, int64(start))
	if b.err == nil {
		b.vals = make([]float32, n*r.length)
		DecodeFloat32(b.vals, buf)
	}
	close(b.ready)
	if b.err != nil {
		// Drop the failed entry (unless eviction already did, or a later
		// miss replaced it) so a retry re-reads the device.
		r.mu.Lock()
		if r.blocks[idx] == b {
			delete(r.blocks, idx)
			r.unlink(b)
			r.resident -= b.bytes
		}
		r.mu.Unlock()
		panic(fmt.Sprintf("storage: disk reader block %d: %v", idx, b.err))
	}
	return b
}

// evictLocked drops least-recently-used blocks until the budget holds,
// never evicting keep (the block the caller is about to return). Evicting
// a block that is still loading is safe: its loader and waiters hold their
// own reference; only the cache forgets it.
func (r *DiskReader) evictLocked(keep *cacheBlock) {
	for r.resident > r.budget {
		b := r.lru.prev
		if b == &r.lru || b == keep {
			return
		}
		delete(r.blocks, b.idx)
		r.unlink(b)
		r.resident -= b.bytes
		r.evictions++
	}
}

func (r *DiskReader) pushFront(b *cacheBlock) {
	b.prev, b.next = &r.lru, r.lru.next
	b.prev.next, b.next.prev = b, b
}

func (r *DiskReader) unlink(b *cacheBlock) {
	b.prev.next, b.next.prev = b.next, b.prev
	b.prev, b.next = nil, nil
}

func (r *DiskReader) moveToFront(b *cacheBlock) {
	if r.lru.next == b {
		return
	}
	b.prev.next, b.next.prev = b.next, b.prev
	r.pushFront(b)
}
