package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"dsidx/internal/series"
)

// Series file format ("DSF1"):
//
//	offset 0:  magic "DSF1" (4 bytes)
//	offset 4:  series length in points (uint32 LE)
//	offset 8:  series count (uint64 LE)
//	offset 16: count × length float32 LE values
//
// This is the raw data file the ParIS coordinator reads sequentially during
// index creation and the real-distance workers read randomly during query
// answering.

const (
	seriesFileHeaderSize = 16
	seriesFileMagic      = "DSF1"
)

// SeriesFile provides typed access to a series collection stored in a Store
// (usually a Disk, so every access is charged device time).
type SeriesFile struct {
	store  Store
	count  int64
	length int
}

// CreateSeriesFile initializes the header of an empty series file for the
// given series length.
func CreateSeriesFile(store Store, length int) (*SeriesFile, error) {
	if length <= 0 {
		return nil, fmt.Errorf("storage: invalid series length %d", length)
	}
	var hdr [seriesFileHeaderSize]byte
	copy(hdr[:4], seriesFileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(length))
	binary.LittleEndian.PutUint64(hdr[8:16], 0)
	if _, err := store.WriteAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: writing header: %w", err)
	}
	return &SeriesFile{store: store, length: length}, nil
}

// OpenSeriesFile validates the header of an existing series file.
func OpenSeriesFile(store Store) (*SeriesFile, error) {
	var hdr [seriesFileHeaderSize]byte
	if _, err := store.ReadAt(hdr[:], 0); err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if string(hdr[:4]) != seriesFileMagic {
		return nil, corruptf("bad magic %q", hdr[:4])
	}
	length := int(binary.LittleEndian.Uint32(hdr[4:8]))
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if length <= 0 {
		return nil, corruptf("invalid series length %d", length)
	}
	// The count field is attacker-controlled bytes at this point. Converting
	// it to int64 first would wrap values ≥ 2^63 negative — making `need`
	// negative, passing the size check below, and returning a garbage file —
	// and even positive counts can overflow count*length*4. Bound the count
	// by what an int64 byte offset can address before any multiplication.
	maxCount := uint64((math.MaxInt64 - seriesFileHeaderSize) / (int64(length) * 4))
	if count > maxCount {
		return nil, corruptf("series count %d overflows a %d-point file", count, length)
	}
	need := seriesFileHeaderSize + int64(count)*int64(length)*4
	if store.Size() < need {
		return nil, corruptf("file size %d below required %d", store.Size(), need)
	}
	return &SeriesFile{store: store, count: int64(count), length: length}, nil
}

// Count returns the number of series in the file.
func (f *SeriesFile) Count() int64 { return f.count }

// Length returns the number of points per series.
func (f *SeriesFile) Length() int { return f.length }

// offsetOf maps a series index to its byte offset. Safe from overflow for
// any i ≤ f.count: OpenSeriesFile bounds the count so the last offset fits
// an int64, and CreateSeriesFile/Append grow count only by real writes.
func (f *SeriesFile) offsetOf(i int64) int64 {
	return seriesFileHeaderSize + i*int64(f.length)*4
}

// Append writes the series of coll after the current end of the file and
// updates the header count. Not safe for concurrent appends.
func (f *SeriesFile) Append(coll *series.Collection) error {
	if coll.SeriesLen() != f.length {
		return fmt.Errorf("storage: appending length-%d series to length-%d file",
			coll.SeriesLen(), f.length)
	}
	buf := make([]byte, coll.Len()*f.length*4)
	encodeFloat32(buf, coll.Values())
	if _, err := f.store.WriteAt(buf, f.offsetOf(f.count)); err != nil {
		return fmt.Errorf("storage: appending %d series: %w", coll.Len(), err)
	}
	f.count += int64(coll.Len())
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(f.count))
	if _, err := f.store.WriteAt(cnt[:], 8); err != nil {
		return fmt.Errorf("storage: updating count: %w", err)
	}
	return nil
}

// ReadBatch reads count series starting at index start into a collection.
// One contiguous device read, so the coordinator's sequential scan is
// charged sequential (not random) device time.
func (f *SeriesFile) ReadBatch(start, count int64) (*series.Collection, error) {
	buf, err := f.ReadBatchBytes(start, count)
	if err != nil {
		return nil, err
	}
	values := make([]float32, count*int64(f.length))
	DecodeFloat32(values, buf)
	return series.CollectionFromValues(values, f.length)
}

// ReadBatchBytes reads count series starting at start as raw little-endian
// bytes, leaving decoding to the caller. The ParIS coordinator uses this so
// that its stage-1 thread only moves bytes (as in the paper) and the CPU
// cost of decoding lands on the parallel bulk-loading workers.
func (f *SeriesFile) ReadBatchBytes(start, count int64) ([]byte, error) {
	buf := make([]byte, count*int64(f.length)*4)
	if err := f.ReadBatchBytesInto(buf, start); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadBatchBytesInto reads len(buf)/(4·length) series starting at start
// into a caller-provided buffer (enabling buffer pooling in hot pipelines).
func (f *SeriesFile) ReadBatchBytesInto(buf []byte, start int64) error {
	count := int64(len(buf)) / (int64(f.length) * 4)
	// start > f.count-count, not start+count > f.count: the subtraction form
	// cannot overflow (count ≥ 0 and f.count is bounded by OpenSeriesFile's
	// validation), while a huge start could wrap the addition negative.
	if start < 0 || start > f.count-count || int64(len(buf))%(int64(f.length)*4) != 0 {
		return fmt.Errorf("storage: batch [%d,%d) invalid for file of %d", start, start+count, f.count)
	}
	if _, err := f.store.ReadAt(buf, f.offsetOf(start)); err != nil {
		return fmt.Errorf("storage: reading batch at %d: %w", start, err)
	}
	return nil
}

// ReadSeries reads series i into dst (which must have the file's series
// length). Each call is one device read; non-contiguous positions pay the
// device's seek penalty — this is the random-access pattern of the
// real-distance phase of on-disk query answering.
func (f *SeriesFile) ReadSeries(i int64, dst series.Series) error {
	if i < 0 || i >= f.count {
		return fmt.Errorf("storage: series %d out of range [0,%d)", i, f.count)
	}
	if len(dst) != f.length {
		return fmt.Errorf("storage: destination length %d != %d", len(dst), f.length)
	}
	buf := make([]byte, f.length*4)
	if _, err := f.store.ReadAt(buf, f.offsetOf(i)); err != nil {
		return fmt.Errorf("storage: reading series %d: %w", i, err)
	}
	DecodeFloat32(dst, buf)
	return nil
}

// WriteCollection creates a series file in store holding all of coll.
func WriteCollection(store Store, coll *series.Collection) (*SeriesFile, error) {
	f, err := CreateSeriesFile(store, coll.SeriesLen())
	if err != nil {
		return nil, err
	}
	// Write in batches so the simulated device sees a realistic sequential
	// stream instead of one giant transfer.
	const batch = 4096
	for lo := 0; lo < coll.Len(); lo += batch {
		hi := lo + batch
		if hi > coll.Len() {
			hi = coll.Len()
		}
		if err := f.Append(coll.Slice(lo, hi)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func encodeFloat32(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
	}
}

// DecodeFloat32 decodes little-endian float32 values; len(src) must be
// 4·len(dst).
func DecodeFloat32(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
}
