package storage

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"
)

// craftedHeader builds a DSF1 header with arbitrary length and count fields,
// optionally followed by payload bytes — the raw material for exercising
// OpenSeriesFile against hostile headers.
func craftedHeader(t *testing.T, length uint32, count uint64, payload int) Store {
	t.Helper()
	buf := make([]byte, seriesFileHeaderSize+payload)
	copy(buf[:4], seriesFileMagic)
	binary.LittleEndian.PutUint32(buf[4:8], length)
	binary.LittleEndian.PutUint64(buf[8:16], count)
	m := NewMemStore()
	if _, err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenSeriesFileCorruptCount(t *testing.T) {
	cases := []struct {
		name    string
		length  uint32
		count   uint64
		payload int
	}{
		// count ≥ 2^63: converting to int64 before validating wraps the
		// required size negative, so the naive size check passes and Open
		// returns a file whose offsets are garbage. The regression the
		// overflow-safe bound pins.
		{"count wraps int64", 8, 1 << 63, 64},
		{"count max uint64", 8, math.MaxUint64, 64},
		// count itself fits an int64 but count*length*4 overflows it.
		{"product overflows", math.MaxUint32, math.MaxInt64 / 2, 64},
		// Plausible count, file simply too small.
		{"oversized count", 8, 1000, 10 * 8 * 4},
		// Off-by-one: one byte short of the last series.
		{"one byte short", 8, 2, 2*8*4 - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := craftedHeader(t, tc.length, tc.count, tc.payload)
			f, err := OpenSeriesFile(store)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenSeriesFile = (%v, %v), want ErrCorrupt", f, err)
			}
		})
	}

	// Sanity: a crafted header whose fields are consistent still opens.
	store := craftedHeader(t, 8, 2, 2*8*4)
	f, err := OpenSeriesFile(store)
	if err != nil {
		t.Fatalf("valid crafted header rejected: %v", err)
	}
	if f.Count() != 2 || f.Length() != 8 {
		t.Fatalf("shape = (%d,%d), want (2,8)", f.Count(), f.Length())
	}
}

func TestLeafStoreReadCorruptRefs(t *testing.T) {
	ls := NewLeafStore(NewMemStore())
	ref, err := ls.Append([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []LeafRef{
		{Offset: 0, Len: -1},
		{Offset: -1, Len: 4},
		{Offset: math.MinInt64, Len: 4},
		{Offset: 0, Len: math.MaxInt32},
		// Offset near MaxInt64: offset+4+len wraps negative, so the
		// addition-form bounds check would let it through to ReadAt.
		{Offset: math.MaxInt64 - 2, Len: 16},
		{Offset: ref.Offset + 1, Len: ref.Len},   // misaligned: prefix mismatch
		{Offset: ref.Offset, Len: ref.Len + 100}, // runs past the store end
	}
	for _, r := range bad {
		blob, err := ls.Read(r)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("Read(%+v) = (%q, %v), want ErrCorrupt", r, blob, err)
		}
	}
	// The genuine ref still reads.
	if blob, err := ls.Read(ref); err != nil || string(blob) != "payload" {
		t.Fatalf("valid ref read = (%q, %v)", blob, err)
	}
}

// TestDiskPerStreamSeekAccounting pins the per-channel sequential detection:
// two goroutines each scanning their own region sequentially, interleaved by
// the scheduler, must be charged roughly one seek per stream — not a seek on
// nearly every op, which is what a single shared last-offset produced.
func TestDiskPerStreamSeekAccounting(t *testing.T) {
	const ops, chunk = 64, 128
	profile := Profile{Name: "test", Seek: time.Nanosecond, Parallelism: 2}
	d := NewDisk(NewMemStore(), profile)
	d.SetScale(0)
	if err := d.Truncate(4 * ops * chunk); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			// Disjoint, non-adjacent regions away from offset 0: a stream
			// starting at 0 (a fresh channel's last-read position) or exactly
			// where the other region ends would be a free "continuation" and
			// dodge its initial seek.
			base := int64((2*s + 1) * ops * chunk)
			buf := make([]byte, chunk)
			for i := 0; i < ops; i++ {
				if _, err := d.ReadAt(buf, base+int64(i*chunk)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(s)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.ReadOps != 2*ops {
		t.Fatalf("ReadOps = %d, want %d", m.ReadOps, 2*ops)
	}
	// Each stream pays its initial seek; a rare unlucky interleaving can add
	// a couple more (both streams racing onto one channel), but anything near
	// the op count means sequential detection is broken.
	if m.Seeks < 2 || m.Seeks > 8 {
		t.Fatalf("Seeks = %d for 2 interleaved sequential streams, want ~2", m.Seeks)
	}
}

// FuzzOpenSeriesFile pins the decode-never-panics invariant for the DSF1
// header: arbitrary store contents either open (and then serve reads without
// panicking) or fail with ErrCorrupt.
func FuzzOpenSeriesFile(f *testing.F) {
	valid := make([]byte, seriesFileHeaderSize+2*8*4)
	copy(valid[:4], seriesFileMagic)
	binary.LittleEndian.PutUint32(valid[4:8], 8)
	binary.LittleEndian.PutUint64(valid[8:16], 2)
	f.Add(valid)
	wrapped := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(wrapped[8:16], 1<<63)
	f.Add(wrapped)
	f.Add([]byte("DSF1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMemStore()
		if len(data) > 0 {
			if _, err := m.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		sf, err := OpenSeriesFile(m)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		// An accepted header must be fully readable: the size check bounds
		// count by the store size, so this cannot allocate beyond the input.
		if sf.Count() > 0 {
			if _, err := sf.ReadBatch(0, sf.Count()); err != nil {
				t.Fatalf("accepted file failed to read: %v", err)
			}
		}
	})
}

// FuzzLeafStoreRead pins the same invariant for leaf references decoded from
// persisted bytes: any (offset, len) pair returns data or ErrCorrupt.
func FuzzLeafStoreRead(f *testing.F) {
	f.Add([]byte{7, 0, 0, 0, 'p', 'a', 'y', 'l', 'o', 'a', 'd'}, int64(0), int32(7))
	f.Add([]byte{}, int64(math.MaxInt64-2), int32(16))
	f.Add([]byte{0, 0, 0, 0}, int64(0), int32(-1))
	f.Add([]byte{255, 255, 255, 255}, int64(-1), int32(math.MaxInt32))

	f.Fuzz(func(t *testing.T, data []byte, off int64, ln int32) {
		m := NewMemStore()
		if len(data) > 0 {
			if _, err := m.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		ls := NewLeafStore(m)
		if _, err := ls.Read(LeafRef{Offset: off, Len: ln}); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-ErrCorrupt failure: %v", err)
		}
	})
}
