package storage

import (
	"fmt"
	"os"
	"sync"
)

// FileStore is a Store backed by an operating-system file, for users who
// want real persistence rather than the in-memory stores the experiments
// use. Latency injection still applies when wrapped in a Disk.
type FileStore struct {
	f *os.File

	mu   sync.Mutex
	size int64
}

// OpenFileStore opens (or creates) the file at path for read/write access.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	return &FileStore{f: f, size: info.Size()}, nil
}

// ReadAt implements io.ReaderAt.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt, tracking the file size.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) {
	n, err := s.f.WriteAt(p, off)
	s.mu.Lock()
	if end := off + int64(n); end > s.size {
		s.size = end
	}
	s.mu.Unlock()
	return n, err
}

// Size returns the current file size.
func (s *FileStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Truncate resizes the file.
func (s *FileStore) Truncate(size int64) error {
	if err := s.f.Truncate(size); err != nil {
		return err
	}
	s.mu.Lock()
	s.size = size
	s.mu.Unlock()
	return nil
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

var _ Store = (*FileStore)(nil)
