package cluster

import (
	"math"
	"testing"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
)

func testData(t *testing.T, n int) (*series.Collection, *series.Collection) {
	t.Helper()
	g := gen.Generator{Kind: gen.Synthetic, Length: 128, Seed: 91}
	return g.Collection(n), g.Queries(6)
}

func TestBuildPartitionsEverything(t *testing.T) {
	coll, _ := testData(t, 1000)
	for _, nodes := range []int{1, 3, 7} {
		c, err := Build(coll, Options{Nodes: nodes, Index: core.Config{LeafCapacity: 32}})
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != 1000 || c.Nodes() != nodes {
			t.Fatalf("nodes=%d: Len=%d Nodes=%d", nodes, c.Len(), c.Nodes())
		}
		total := 0
		for _, nd := range c.nodes {
			total += nd.index.Count()
		}
		if total != 1000 {
			t.Fatalf("nodes=%d: partitions hold %d series", nodes, total)
		}
	}
}

func TestSearchExactAcrossPartitionCounts(t *testing.T) {
	coll, queries := testData(t, 1200)
	for _, nodes := range []int{1, 2, 5, 8} {
		c, err := Build(coll, Options{Nodes: nodes, Index: core.Config{LeafCapacity: 32}})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.At(qi)
			_, wantDist := coll.BruteForce1NN(q)
			got, stats, err := c.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-wantDist) > 1e-6*math.Max(1, wantDist) {
				t.Fatalf("nodes=%d query %d: %v != %v", nodes, qi, got.Dist, wantDist)
			}
			// The returned position is global and correct.
			if d := series.SquaredED(q, coll.At(int(got.Pos))); math.Abs(d-got.Dist) > 1e-9 {
				t.Fatalf("nodes=%d query %d: pos %d has dist %v, claimed %v",
					nodes, qi, got.Pos, d, got.Dist)
			}
			if len(stats.NodeTimes) != nodes || stats.Slowest <= 0 {
				t.Fatalf("nodes=%d: stats %+v", nodes, stats)
			}
		}
	}
}

func TestSearchKNNMatchesSerial(t *testing.T) {
	coll, queries := testData(t, 900)
	c, err := Build(coll, Options{Nodes: 4, Index: core.Config{LeafCapacity: 32}})
	if err != nil {
		t.Fatal(err)
	}
	const k = 9
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := ucr.ScanKNN(coll, q, k)
		got, _, err := c.SearchKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("query %d: %d results", qi, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*math.Max(1, want[i].Dist) {
				t.Fatalf("query %d rank %d: %v != %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestSearchEmptyAndDegenerate(t *testing.T) {
	empty, err := Build(series.NewCollection(0, 64), Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := empty.Search(make(series.Series, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pos != -1 {
		t.Fatalf("empty cluster returned %+v", r)
	}
	if rs, _, err := empty.SearchKNN(make(series.Series, 64), 3); err != nil || rs != nil {
		t.Fatalf("empty kNN: %v %v", rs, err)
	}
	coll, _ := testData(t, 10)
	c, err := Build(coll, Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rs, _, err := c.SearchKNN(coll.At(0), 0); err != nil || rs != nil {
		t.Fatalf("k=0: %v %v", rs, err)
	}
}

func TestMoreNodesThanSeries(t *testing.T) {
	coll, _ := testData(t, 3)
	c, err := Build(coll, Options{Nodes: 8, Index: core.Config{LeafCapacity: 4}})
	if err != nil {
		t.Fatal(err)
	}
	q := coll.At(1)
	got, _, err := c.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 1 || got.Dist != 0 {
		t.Fatalf("self-query answered %+v", got)
	}
}

func TestNetworkLatencyCharged(t *testing.T) {
	coll, queries := testData(t, 200)
	c, err := Build(coll, Options{Nodes: 2, NetworkLatency: 20 * time.Millisecond,
		Index: core.Config{LeafCapacity: 32}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, _, err := c.Search(queries.At(0)); err != nil {
		t.Fatal(err)
	}
	// Two hops in parallel across nodes: at least ~40ms.
	if elapsed := time.Since(t0); elapsed < 35*time.Millisecond {
		t.Fatalf("query took %v, expected ≥40ms of network latency", elapsed)
	}
}
