// Package cluster implements the distributed extension the paper's §V
// describes ("we are also integrating our techniques with a distributed
// approach [DPiSAX, TKDE'19], which is complementary to the ParIS+ and
// MESSI solutions"): a collection is partitioned across nodes, each node
// holds a MESSI index over its partition, and a coordinator answers
// queries by scatter-gather — broadcast the query, take the minimum of
// the local exact answers (or merge local k-NN sets).
//
// Nodes are simulated in-process: each node is a goroutine-served
// partition with an optional per-message network latency, so the
// coordinator-side behaviour (fan-out, stragglers, result merging) is
// faithful while the whole system stays hermetic. Exactness is preserved
// by construction: the global NN lives in exactly one partition, and that
// partition's local exact search returns it.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"dsidx/internal/core"
	"dsidx/internal/messi"
	"dsidx/internal/series"
	"dsidx/internal/xsync"
)

// Options configures a cluster build.
type Options struct {
	// Nodes is the number of partitions (default 4).
	Nodes int
	// WorkersPerNode bounds each node's local index parallelism
	// (default GOMAXPROCS / Nodes, minimum 1).
	WorkersPerNode int
	// NetworkLatency is the simulated one-way message latency between the
	// coordinator and a node (0 disables).
	NetworkLatency time.Duration
	// Index are the local index settings.
	Index core.Config
}

func (o Options) normalize() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.WorkersPerNode <= 0 {
		o.WorkersPerNode = 1
	}
	return o
}

// node is one partition: a slice of the global collection plus the global
// positions of its members.
type node struct {
	index  *messi.Index
	global []int32 // global position of local series i
}

// Cluster is a coordinator plus its nodes.
type Cluster struct {
	opt   Options
	nodes []*node
	len   int
}

// Build partitions coll round-robin across the configured nodes and builds
// each node's local MESSI index in parallel (round-robin keeps partitions
// statistically identical, the standard choice of the distributed iSAX
// line).
func Build(coll *series.Collection, opt Options) (*Cluster, error) {
	opt = opt.normalize()
	n := coll.Len()
	c := &Cluster{opt: opt, nodes: make([]*node, opt.Nodes), len: n}

	// Partition round-robin.
	parts := make([]*series.Collection, opt.Nodes)
	globals := make([][]int32, opt.Nodes)
	for i := range parts {
		size := n / opt.Nodes
		if i < n%opt.Nodes {
			size++
		}
		parts[i] = series.NewCollection(size, coll.SeriesLen())
		globals[i] = make([]int32, 0, size)
	}
	counts := make([]int, opt.Nodes)
	for i := 0; i < n; i++ {
		p := i % opt.Nodes
		parts[p].Set(counts[p], coll.At(i))
		globals[p] = append(globals[p], int32(i))
		counts[p]++
	}

	var wg sync.WaitGroup
	errs := make([]error, opt.Nodes)
	for i := 0; i < opt.Nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix, err := messi.Build(parts[i], opt.Index, messi.Options{Workers: opt.WorkersPerNode})
			if err != nil {
				errs[i] = err
				return
			}
			c.nodes[i] = &node{index: ix, global: globals[i]}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: building node %d: %w", i, err)
		}
	}
	return c, nil
}

// Close releases every node index's worker pool. Queries issued after
// Close still answer correctly, executing serially.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.index.Close()
		}
	}
}

// Len returns the total number of indexed series.
func (c *Cluster) Len() int { return c.len }

// Nodes returns the partition count.
func (c *Cluster) Nodes() int { return c.opt.Nodes }

// hop simulates one network message.
func (c *Cluster) hop() {
	if c.opt.NetworkLatency > 0 {
		time.Sleep(c.opt.NetworkLatency)
	}
}

// QueryStats aggregates per-node work for one distributed query.
type QueryStats struct {
	NodeTimes []time.Duration // local search wall time per node
	Slowest   time.Duration   // the straggler that bounds query latency
}

// Search answers an exact 1-NN query by scatter-gather over all nodes.
func (c *Cluster) Search(q series.Series) (core.Result, *QueryStats, error) {
	if c.len == 0 {
		return core.NoResult(), &QueryStats{}, nil
	}
	stats := &QueryStats{NodeTimes: make([]time.Duration, len(c.nodes))}
	best := xsync.NewBest()
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, nd := range c.nodes {
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			c.hop() // coordinator → node
			t0 := time.Now()
			r, _, err := nd.index.Search(q, 0)
			stats.NodeTimes[i] = time.Since(t0)
			if err != nil {
				errs[i] = err
				return
			}
			c.hop() // node → coordinator
			if r.Pos >= 0 {
				best.Update(r.Dist, int64(nd.global[r.Pos]))
			}
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return core.NoResult(), stats, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	for _, d := range stats.NodeTimes {
		if d > stats.Slowest {
			stats.Slowest = d
		}
	}
	d, p := best.Load()
	return core.Result{Pos: int32(p), Dist: d}, stats, nil
}

// SearchKNN answers an exact k-NN query: each node returns its local k
// best, and the coordinator merges. Correct because the global k nearest
// are distributed among the nodes' local k-NN sets.
func (c *Cluster) SearchKNN(q series.Series, k int) ([]core.Result, *QueryStats, error) {
	if k <= 0 || c.len == 0 {
		return nil, &QueryStats{}, nil
	}
	stats := &QueryStats{NodeTimes: make([]time.Duration, len(c.nodes))}
	merged := xsync.NewKBest(k)
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, nd := range c.nodes {
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			c.hop()
			t0 := time.Now()
			rs, _, err := nd.index.SearchKNN(q, k, 0)
			stats.NodeTimes[i] = time.Since(t0)
			if err != nil {
				errs[i] = err
				return
			}
			c.hop()
			for _, r := range rs {
				merged.Offer(nd.global[r.Pos], r.Dist)
			}
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	for _, d := range stats.NodeTimes {
		if d > stats.Slowest {
			stats.Slowest = d
		}
	}
	out := make([]core.Result, 0, k)
	for _, e := range merged.Sorted() {
		out = append(out, core.Result{Pos: e.Pos, Dist: e.Dist})
	}
	return out, stats, nil
}
