package ucr

import (
	"errors"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/storage"
)

type truncatingStore struct {
	*storage.MemStore
	limit int64
}

var errTruncated = errors.New("device lost")

func (s *truncatingStore) ReadAt(p []byte, off int64) (int, error) {
	if off >= s.limit {
		return 0, errTruncated
	}
	return s.MemStore.ReadAt(p, off)
}

func TestScanDiskPropagatesErrors(t *testing.T) {
	g := gen.Generator{Kind: gen.Synthetic, Length: 64, Seed: 60}
	coll := g.Collection(500)
	mem := storage.NewMemStore()
	f, err := storage.WriteCollection(mem, coll)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	// Reopen through a store that fails past the first half of the data.
	bad := &truncatingStore{MemStore: mem, limit: mem.Size() / 2}
	g2, err := storage.OpenSeriesFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	q := g.Queries(1).At(0)
	if _, err := ScanDisk(g2, q, 100); !errors.Is(err, errTruncated) {
		t.Fatalf("ScanDisk error = %v, want device lost", err)
	}
}

func TestKBestThresholdSemantics(t *testing.T) {
	h := newKBest(3)
	if th := h.threshold(); th != th || th < 1e308 {
		t.Fatalf("empty heap threshold = %v, want +Inf", th)
	}
	h.offer(Result{Pos: 1, Dist: 5})
	h.offer(Result{Pos: 2, Dist: 3})
	if th := h.threshold(); th < 1e308 {
		t.Fatalf("underfull heap threshold = %v, want +Inf", th)
	}
	h.offer(Result{Pos: 3, Dist: 9})
	if th := h.threshold(); th != 9 {
		t.Fatalf("threshold = %v, want 9 (k-th best)", th)
	}
	h.offer(Result{Pos: 4, Dist: 1})
	if th := h.threshold(); th != 5 {
		t.Fatalf("after improvement threshold = %v, want 5", th)
	}
	out := h.sorted()
	if len(out) != 3 || out[0].Dist != 1 || out[1].Dist != 3 || out[2].Dist != 5 {
		t.Fatalf("sorted = %v", out)
	}
}
