package ucr

import (
	"math"
	"testing"

	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

func testData(t *testing.T, n int) (*series.Collection, *series.Collection) {
	t.Helper()
	g := gen.Generator{Kind: gen.Synthetic, Length: 128, Seed: 31}
	return g.Collection(n), g.Queries(10)
}

func TestScanMatchesBruteForce(t *testing.T) {
	coll, queries := testData(t, 500)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		wantPos, wantDist := coll.BruteForce1NN(q)
		got := Scan(coll, q)
		if int(got.Pos) != wantPos || math.Abs(got.Dist-wantDist) > 1e-9 {
			t.Fatalf("query %d: Scan = (%d,%v), brute force = (%d,%v)",
				qi, got.Pos, got.Dist, wantPos, wantDist)
		}
	}
}

func TestScanEmpty(t *testing.T) {
	coll := series.NewCollection(0, 8)
	got := Scan(coll, make(series.Series, 8))
	if got.Pos != -1 || !math.IsInf(got.Dist, 1) {
		t.Fatalf("empty scan = %+v", got)
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	coll, queries := testData(t, 1000)
	for _, workers := range []int{1, 2, 4, 8, 0} {
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.At(qi)
			want := Scan(coll, q)
			got := ParallelScan(coll, q, workers)
			if math.Abs(got.Dist-want.Dist) > 1e-6*math.Max(1, want.Dist) {
				t.Fatalf("workers=%d query %d: parallel dist %v != serial %v",
					workers, qi, got.Dist, want.Dist)
			}
		}
	}
}

func TestScanKNN(t *testing.T) {
	coll, queries := testData(t, 400)
	q := queries.At(0)
	const k = 5
	got := ScanKNN(coll, q, k)
	if len(got) != k {
		t.Fatalf("returned %d results, want %d", len(got), k)
	}
	// Ascending order.
	for i := 1; i < k; i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("results not sorted: %v", got)
		}
	}
	// Matches an exhaustive k-NN.
	type pair struct {
		pos  int
		dist float64
	}
	all := make([]pair, coll.Len())
	for i := 0; i < coll.Len(); i++ {
		all[i] = pair{i, series.SquaredED(q, coll.At(i))}
	}
	for i := 0; i < k; i++ {
		minJ := i
		for j := i + 1; j < len(all); j++ {
			if all[j].dist < all[minJ].dist {
				minJ = j
			}
		}
		all[i], all[minJ] = all[minJ], all[i]
		if math.Abs(got[i].Dist-all[i].dist) > 1e-9 {
			t.Fatalf("k-NN %d: %v, want %v", i, got[i].Dist, all[i].dist)
		}
	}
	// First result agrees with 1-NN scan.
	if got[0].Pos != Scan(coll, q).Pos {
		t.Error("k-NN first result differs from 1-NN")
	}
}

func TestScanKNNDegenerate(t *testing.T) {
	coll, queries := testData(t, 3)
	if got := ScanKNN(coll, queries.At(0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	got := ScanKNN(coll, queries.At(0), 10)
	if len(got) != 3 {
		t.Fatalf("k beyond collection size: %d results, want 3", len(got))
	}
}

func TestScanDiskMatchesMemory(t *testing.T) {
	coll, queries := testData(t, 300)
	store := storage.NewMemStore()
	f, err := storage.WriteCollection(store, coll)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 3; qi++ {
		q := queries.At(qi)
		want := Scan(coll, q)
		for _, batch := range []int{0, 7, 100, 1000} {
			got, err := ScanDisk(f, q, batch)
			if err != nil {
				t.Fatal(err)
			}
			if got.Pos != want.Pos || math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("batch=%d: disk scan (%d,%v) != memory (%d,%v)",
					batch, got.Pos, got.Dist, want.Pos, want.Dist)
			}
		}
	}
}

func TestScanDTWMatchesBruteForce(t *testing.T) {
	g := gen.Generator{Kind: gen.SALD, Length: 64, Seed: 8}
	coll := g.Collection(150)
	queries := g.Queries(5)
	window := 5
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		// Brute force DTW.
		wantPos, wantDist := -1, math.Inf(1)
		for i := 0; i < coll.Len(); i++ {
			if d := series.DTW(q, coll.At(i), window, math.Inf(1)); d < wantDist {
				wantPos, wantDist = i, d
			}
		}
		got := ScanDTW(coll, q, window)
		if int(got.Pos) != wantPos || math.Abs(got.Dist-wantDist) > 1e-6 {
			t.Fatalf("query %d: ScanDTW = (%d,%v), want (%d,%v)",
				qi, got.Pos, got.Dist, wantPos, wantDist)
		}
		par := ParallelScanDTW(coll, q, window, 4)
		if math.Abs(par.Dist-wantDist) > 1e-6 {
			t.Fatalf("query %d: parallel DTW dist %v, want %v", qi, par.Dist, wantDist)
		}
	}
}

func TestDTWTighterThanED(t *testing.T) {
	// DTW-NN distance never exceeds ED-NN distance for the same query.
	g := gen.Generator{Kind: gen.Seismic, Length: 64, Seed: 17}
	coll := g.Collection(100)
	q := g.Queries(1).At(0)
	ed := Scan(coll, q)
	dtw := ScanDTW(coll, q, 4)
	if dtw.Dist > ed.Dist+1e-9 {
		t.Fatalf("DTW NN %v exceeds ED NN %v", dtw.Dist, ed.Dist)
	}
}
