// Package ucr implements the UCR Suite baseline (Rakthanmanon et al.,
// SIGKDD 2012), the serial-scan comparator of the paper's evaluation, plus
// the parallel in-memory variant ("UCR Suite-p") used in Figures 9 and 12.
//
// For whole-matching Euclidean search over z-normalized series, the UCR
// Suite reduces to a sequential scan with early-abandoning distance
// computations; for DTW it adds the LB_Keogh lower-bound cascade. Both are
// implemented here, over in-memory collections and over on-disk series
// files (the HDD/SSD experiments of Figures 10 and 11 scan the raw file).
package ucr

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dsidx/internal/core"
	"dsidx/internal/series"
	"dsidx/internal/storage"
	"dsidx/internal/vector"
	"dsidx/internal/xsync"
)

// Result is the shared search answer type; for DTW searches Dist holds the
// squared DTW distance.
type Result = core.Result

// Scan performs serial exact 1-NN search over an in-memory collection with
// early abandoning — the UCR Suite baseline.
//
// The scans here use the same vector.SquaredEDEarlyAbandon kernel as the
// indexes, so for a series that is never abandoned (in particular the
// winner, whose partial sums all stay below the threshold) every system
// computes the identical floating-point sum. That makes the serial scan a
// bit-exact ground truth for the index and concurrent-engine test suites,
// not just a tolerance-based one.
func Scan(coll *series.Collection, q series.Series) Result {
	best := Result{Pos: -1, Dist: math.Inf(1)}
	for i := 0; i < coll.Len(); i++ {
		d := vector.SquaredEDEarlyAbandon(q, coll.At(i), best.Dist)
		if d < best.Dist {
			best = Result{Pos: int32(i), Dist: d}
		}
	}
	return best
}

// ScanLive is Scan restricted to the positions [lo, coll.Len()) for which
// dead reports false — the oracle form the delete- and window-aware
// differential suites reduce to. A nil dead means every position is live;
// lo 0 plus nil dead is exactly Scan. The same kernel-sharing argument
// makes it a bit-exact ground truth: skipping a position never perturbs
// the floating-point sums computed for the positions that are visited.
func ScanLive(coll *series.Collection, q series.Series, lo int, dead func(int) bool) Result {
	best := Result{Pos: -1, Dist: math.Inf(1)}
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < coll.Len(); i++ {
		if dead != nil && dead(i) {
			continue
		}
		d := vector.SquaredEDEarlyAbandon(q, coll.At(i), best.Dist)
		if d < best.Dist {
			best = Result{Pos: int32(i), Dist: d}
		}
	}
	return best
}

// ScanLiveKNN is ScanKNN restricted like ScanLive.
func ScanLiveKNN(coll *series.Collection, q series.Series, k, lo int, dead func(int) bool) []Result {
	if k <= 0 {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	heap := newKBest(k)
	for i := lo; i < coll.Len(); i++ {
		if dead != nil && dead(i) {
			continue
		}
		d := vector.SquaredEDEarlyAbandon(q, coll.At(i), heap.threshold())
		heap.offer(Result{Pos: int32(i), Dist: d})
	}
	return heap.sorted()
}

// ScanLiveDTW is ScanDTW restricted like ScanLive.
func ScanLiveDTW(coll *series.Collection, q series.Series, window, lo int, dead func(int) bool) Result {
	env := series.NewEnvelope(q, window)
	best := Result{Pos: -1, Dist: math.Inf(1)}
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < coll.Len(); i++ {
		if dead != nil && dead(i) {
			continue
		}
		s := coll.At(i)
		if lb := series.LBKeogh(env, s, best.Dist); lb >= best.Dist {
			continue
		}
		d := series.DTW(q, s, window, best.Dist)
		if d < best.Dist {
			best = Result{Pos: int32(i), Dist: d}
		}
	}
	return best
}

// ScanKNN performs serial exact k-NN search, returning the k nearest
// neighbors in ascending distance order.
func ScanKNN(coll *series.Collection, q series.Series, k int) []Result {
	if k <= 0 {
		return nil
	}
	// Bounded max-heap on distance: the root is the current k-th best,
	// which doubles as the abandoning threshold.
	heap := newKBest(k)
	for i := 0; i < coll.Len(); i++ {
		d := vector.SquaredEDEarlyAbandon(q, coll.At(i), heap.threshold())
		heap.offer(Result{Pos: int32(i), Dist: d})
	}
	return heap.sorted()
}

// ParallelScan is "UCR Suite-p": the collection is split into one chunk per
// worker and scanned concurrently with a shared best-so-far, so abandoning
// thresholds tighten globally as any worker improves the answer.
func ParallelScan(coll *series.Collection, q series.Series, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := xsync.Chunks(coll.Len(), workers)
	best := xsync.NewBest()
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(ch xsync.Chunk) {
			defer wg.Done()
			for i := ch.Lo; i < ch.Hi; i++ {
				limit := best.Distance()
				d := vector.SquaredEDEarlyAbandon(q, coll.At(i), limit)
				if d < limit {
					best.Update(d, int64(i))
				}
			}
		}(ch)
	}
	wg.Wait()
	d, p := best.Load()
	return Result{Pos: int32(p), Dist: d}
}

// ScanDisk performs the serial UCR Suite scan over an on-disk series file,
// reading sequential batches — the configuration of Figures 10 and 11. The
// batch size trades memory for fewer device round-trips.
func ScanDisk(f *storage.SeriesFile, q series.Series, batch int) (Result, error) {
	if batch <= 0 {
		batch = 4096
	}
	best := Result{Pos: -1, Dist: math.Inf(1)}
	for lo := int64(0); lo < f.Count(); lo += int64(batch) {
		n := int64(batch)
		if lo+n > f.Count() {
			n = f.Count() - lo
		}
		coll, err := f.ReadBatch(lo, n)
		if err != nil {
			return best, fmt.Errorf("ucr: scanning batch at %d: %w", lo, err)
		}
		for i := 0; i < coll.Len(); i++ {
			d := vector.SquaredEDEarlyAbandon(q, coll.At(i), best.Dist)
			if d < best.Dist {
				best = Result{Pos: int32(lo) + int32(i), Dist: d}
			}
		}
	}
	return best, nil
}

// ScanDTW performs serial exact 1-NN search under DTW with a Sakoe-Chiba
// band of half-width window, using the LB_Keogh cascade: candidates whose
// envelope bound already exceeds the best-so-far never reach the O(n·w)
// dynamic program.
func ScanDTW(coll *series.Collection, q series.Series, window int) Result {
	env := series.NewEnvelope(q, window)
	best := Result{Pos: -1, Dist: math.Inf(1)}
	for i := 0; i < coll.Len(); i++ {
		s := coll.At(i)
		if lb := series.LBKeogh(env, s, best.Dist); lb >= best.Dist {
			continue
		}
		d := series.DTW(q, s, window, best.Dist)
		if d < best.Dist {
			best = Result{Pos: int32(i), Dist: d}
		}
	}
	return best
}

// ParallelScanDTW is the multi-core DTW scan with a shared best-so-far.
func ParallelScanDTW(coll *series.Collection, q series.Series, window, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	env := series.NewEnvelope(q, window)
	chunks := xsync.Chunks(coll.Len(), workers)
	best := xsync.NewBest()
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(ch xsync.Chunk) {
			defer wg.Done()
			for i := ch.Lo; i < ch.Hi; i++ {
				limit := best.Distance()
				s := coll.At(i)
				if lb := series.LBKeogh(env, s, limit); lb >= limit {
					continue
				}
				if d := series.DTW(q, s, window, limit); d < limit {
					best.Update(d, int64(i))
				}
			}
		}(ch)
	}
	wg.Wait()
	d, p := best.Load()
	return Result{Pos: int32(p), Dist: d}
}

// kBest is a fixed-capacity max-heap of the k best results seen so far.
type kBest struct {
	k     int
	items []Result
}

func newKBest(k int) *kBest { return &kBest{k: k, items: make([]Result, 0, k)} }

// threshold returns the current pruning threshold: +Inf until the heap is
// full, then the k-th best distance.
func (h *kBest) threshold() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// offer inserts r if it improves the k-best set.
func (h *kBest) offer(r Result) {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if h.items[parent].Dist >= h.items[i].Dist {
				break
			}
			h.items[parent], h.items[i] = h.items[i], h.items[parent]
			i = parent
		}
		return
	}
	if r.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = r
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if rr < len(h.items) && h.items[rr].Dist > h.items[largest].Dist {
			largest = rr
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// sorted drains the heap into ascending distance order.
func (h *kBest) sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	// Simple insertion sort: k is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist < out[j-1].Dist; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
