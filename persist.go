package dsidx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/storage"
)

// Index persistence: a built index can be saved to a file and reopened
// without rebuilding. The index file stores the tree and the summaries,
// not the build-time raw series — reopening requires the same collection
// (MESSI) or the same DiskCollection (ParIS) the index was built over.
// Live appends are the exception: a MESSI index's appended series exist
// nowhere but in the index, so Save includes them — raw values, on-arrival
// summaries, and the merged/pending split — and LoadMESSI restores the
// delta buffer exactly as it was, no Flush required before saving.
// Sharded indexes persist the same way through Sharded.Save/OpenSharded
// (sharded.go): a DSS1 manifest wrapping each shard's file.

// Save writes the MESSI index to path, including its live-append store
// (both merged and still-pending series).
func (ix *MESSI) Save(path string) error {
	return writeFileAtomic(path, ix.inner.Encode())
}

// LoadMESSI reopens a saved MESSI index over the collection it was built
// from. The collection's shape is validated against the index; appended
// series are restored from the file itself.
func LoadMESSI(path string, coll *Collection, opts ...Option) (*MESSI, error) {
	data, err := readIndexFile(path)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	inner, err := messi.Decode(data, coll, messi.Options{
		Workers:        o.workers,
		QueueCount:     o.queueCount,
		MaxInFlight:    o.maxInFlight,
		MergeThreshold: o.mergeThreshold,
		ProbeLeaves:    o.probeLeaves,
		DisableLeafRaw: o.leafRawOff,
	})
	if err != nil {
		return nil, err
	}
	return &MESSI{inner: inner}, nil
}

// Save writes the ParIS index to path. The index remains bound to the
// DiskCollection it was built over (flushed leaves live on that device).
func (ix *ParIS) Save(path string) error {
	return writeFileAtomic(path, ix.inner.Encode())
}

// LoadParIS reopens a saved on-disk ParIS/ParIS+ index over its
// DiskCollection.
func LoadParIS(path string, dc *DiskCollection, opts ...Option) (*ParIS, error) {
	data, err := readIndexFile(path)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	inner, err := paris.Decode(data, dc.file, storage.NewLeafStore(dc.disk),
		paris.Options{Workers: o.workers, BatchSeries: o.batchSeries})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// LoadParISInMemory reopens a saved in-memory ParIS index over the
// collection it was built from.
func LoadParISInMemory(path string, coll *Collection, opts ...Option) (*ParIS, error) {
	data, err := readIndexFile(path)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	inner, err := paris.DecodeInMemory(data, coll, paris.Options{Workers: o.workers})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// Index files carry an 8-byte integrity trailer appended after the encoded
// envelope (DSI1/DSL1/DSS1 headers): the magic "DSC1" followed by a
// little-endian CRC32-C (Castagnoli) over everything before it. Load/Open
// verify it and surface a mismatch as storage.ErrCorrupt — bit rot or a
// torn write fails the open, it does not decode into a wrong index. Files
// saved before the trailer existed lack it and still load unchanged.
const (
	crcMagic   = "DSC1"
	crcTrailer = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sealEnvelope appends the CRC32-C trailer to an encoded index envelope.
func sealEnvelope(data []byte) []byte {
	out := make([]byte, len(data)+crcTrailer)
	copy(out, data)
	copy(out[len(data):], crcMagic)
	binary.LittleEndian.PutUint32(out[len(data)+4:], crc32.Checksum(data, crcTable))
	return out
}

// openEnvelope verifies and strips the CRC32-C trailer; data without one
// (legacy saves) passes through untouched.
func openEnvelope(data []byte) ([]byte, error) {
	if len(data) < crcTrailer || string(data[len(data)-crcTrailer:len(data)-4]) != crcMagic {
		return data, nil
	}
	body := data[:len(data)-crcTrailer]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("dsidx: index checksum mismatch (%08x != %08x): %w",
			got, want, storage.ErrCorrupt)
	}
	return body, nil
}

// readIndexFile reads a saved index and verifies its integrity trailer.
func readIndexFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsidx: reading index: %w", err)
	}
	return openEnvelope(data)
}

// writeFileAtomic writes data (with its integrity trailer) to path via a
// temp file + rename, fsyncing both the file and its parent directory, so
// a crash mid-save never leaves a truncated index and a completed Save
// survives power loss.
func writeFileAtomic(path string, data []byte) error {
	data = sealEnvelope(data)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dsidx: writing index: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dsidx: writing index: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dsidx: syncing index: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dsidx: writing index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dsidx: committing index: %w", err)
	}
	// Persist the rename itself: fsync the parent directory. Some
	// filesystems don't support directory fsync; a sync error there is
	// ignored rather than failing a save that already landed.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
