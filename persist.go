package dsidx

import (
	"fmt"
	"os"

	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/storage"
)

// Index persistence: a built index can be saved to a file and reopened
// without rebuilding. The index file stores the tree and the summaries,
// not the build-time raw series — reopening requires the same collection
// (MESSI) or the same DiskCollection (ParIS) the index was built over.
// Live appends are the exception: a MESSI index's appended series exist
// nowhere but in the index, so Save includes them — raw values, on-arrival
// summaries, and the merged/pending split — and LoadMESSI restores the
// delta buffer exactly as it was, no Flush required before saving.
// Sharded indexes persist the same way through Sharded.Save/OpenSharded
// (sharded.go): a DSS1 manifest wrapping each shard's file.

// Save writes the MESSI index to path, including its live-append store
// (both merged and still-pending series).
func (ix *MESSI) Save(path string) error {
	return writeFileAtomic(path, ix.inner.Encode())
}

// LoadMESSI reopens a saved MESSI index over the collection it was built
// from. The collection's shape is validated against the index; appended
// series are restored from the file itself.
func LoadMESSI(path string, coll *Collection, opts ...Option) (*MESSI, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsidx: reading index: %w", err)
	}
	o := buildOptions(opts)
	inner, err := messi.Decode(data, coll, messi.Options{
		Workers:        o.workers,
		QueueCount:     o.queueCount,
		MaxInFlight:    o.maxInFlight,
		MergeThreshold: o.mergeThreshold,
		ProbeLeaves:    o.probeLeaves,
		DisableLeafRaw: o.leafRawOff,
	})
	if err != nil {
		return nil, err
	}
	return &MESSI{inner: inner}, nil
}

// Save writes the ParIS index to path. The index remains bound to the
// DiskCollection it was built over (flushed leaves live on that device).
func (ix *ParIS) Save(path string) error {
	return writeFileAtomic(path, ix.inner.Encode())
}

// LoadParIS reopens a saved on-disk ParIS/ParIS+ index over its
// DiskCollection.
func LoadParIS(path string, dc *DiskCollection, opts ...Option) (*ParIS, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsidx: reading index: %w", err)
	}
	o := buildOptions(opts)
	inner, err := paris.Decode(data, dc.file, storage.NewLeafStore(dc.disk),
		paris.Options{Workers: o.workers, BatchSeries: o.batchSeries})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// LoadParISInMemory reopens a saved in-memory ParIS index over the
// collection it was built from.
func LoadParISInMemory(path string, coll *Collection, opts ...Option) (*ParIS, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsidx: reading index: %w", err)
	}
	o := buildOptions(opts)
	inner, err := paris.DecodeInMemory(data, coll, paris.Options{Workers: o.workers})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// writeFileAtomic writes data to path via a temp file + rename, so a crash
// mid-save never leaves a truncated index.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dsidx: writing index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dsidx: committing index: %w", err)
	}
	return nil
}
