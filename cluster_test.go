package dsidx_test

import (
	"math"
	"testing"

	"dsidx"
)

func TestClusterPublicAPI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 1200, 128, 31)
	c, err := dsidx.NewCluster(coll, dsidx.ClusterOptions{Nodes: 4},
		dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1200 || c.Nodes() != 4 {
		t.Fatalf("Len=%d Nodes=%d", c.Len(), c.Nodes())
	}
	queries := dsidx.GenerateQueries(dsidx.Synthetic, 4, 128, 31)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		want := dsidx.ScanNearest(coll, q)
		got, err := c.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Distance-want.Distance) > 1e-6*math.Max(1, want.Distance) {
			t.Fatalf("query %d: cluster %v != scan %v", qi, got.Distance, want.Distance)
		}
		knn, err := c.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantKNN := dsidx.ScanKNN(coll, q, 5)
		for i := range wantKNN {
			if math.Abs(knn[i].Distance-wantKNN[i].Distance) > 1e-6*math.Max(1, wantKNN[i].Distance) {
				t.Fatalf("query %d rank %d: %v != %v", qi, i, knn[i].Distance, wantKNN[i].Distance)
			}
		}
	}
}

func TestWindowsPublicAPI(t *testing.T) {
	long := dsidx.Generate(dsidx.Synthetic, 1, 2048, 33).At(0)
	windows, offsets, err := dsidx.Windows(long, 256, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if windows.Len() != len(offsets) || windows.Len() == 0 {
		t.Fatalf("windows=%d offsets=%d", windows.Len(), len(offsets))
	}
	idx, err := dsidx.NewMESSI(windows)
	if err != nil {
		t.Fatal(err)
	}
	// Query with one of the windows: it must find itself at distance 0.
	q := windows.At(7).Clone()
	m, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pos != 7 || m.Distance > 1e-6 {
		t.Fatalf("self-query answered %+v", m)
	}
}
