package dsidx

import "dsidx/internal/ucr"

// The UCR-Suite-style brute-force baselines: no index, a full scan with
// early abandoning. Useful as ground truth, and as the comparator the paper
// calls "UCR Suite" (serial) and "UCR Suite-p" (parallel).

// ScanNearest serially scans coll for the exact nearest neighbor of q.
func ScanNearest(coll *Collection, q Series) Match {
	return matchOf(ucr.Scan(coll, q))
}

// ScanNearestParallel scans coll with the given number of workers
// (0 = GOMAXPROCS) sharing one best-so-far.
func ScanNearestParallel(coll *Collection, q Series, workers int) Match {
	return matchOf(ucr.ParallelScan(coll, q, workers))
}

// ScanKNN serially scans coll for the exact k nearest neighbors of q.
func ScanKNN(coll *Collection, q Series, k int) []Match {
	return matchesOf(ucr.ScanKNN(coll, q, k))
}

// ScanNearestDTW serially scans coll for the exact DTW nearest neighbor of
// q under a Sakoe-Chiba band of half-width window, with the LB_Keogh
// pruning cascade.
func ScanNearestDTW(coll *Collection, q Series, window int) Match {
	return matchOf(ucr.ScanDTW(coll, q, window))
}

// ScanNearestDiskSerial scans an on-disk collection sequentially — the UCR
// Suite configuration of the paper's Figures 10 and 11.
func ScanNearestDiskSerial(dc *DiskCollection, q Series) (Match, error) {
	r, err := ucr.ScanDisk(dc.file, q, 0)
	return matchOf(r), err
}
