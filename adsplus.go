package dsidx

import (
	"dsidx/internal/adsplus"
	"dsidx/internal/storage"
)

// ADSPlus is the serial ADS+ baseline index over an on-disk collection: the
// state-of-the-art comparator of the paper's evaluation.
type ADSPlus struct {
	inner *adsplus.Index
}

// NewADSPlus builds an ADS+ index over an on-disk collection.
func NewADSPlus(dc *DiskCollection, opts ...Option) (*ADSPlus, error) {
	o := buildOptions(opts)
	inner, err := adsplus.Build(dc.file, storage.NewLeafStore(dc.disk), o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &ADSPlus{inner: inner}, nil
}

// Search returns the exact nearest neighbor of q under Euclidean distance
// (single-threaded, as ADS+ is a serial index).
func (ix *ADSPlus) Search(q Series) (Match, error) {
	r, _, err := ix.inner.Search(q)
	return matchOf(r), err
}

// Stats returns the index tree shape.
func (ix *ADSPlus) Stats() IndexStats { return statsOf(ix.inner.Tree()) }

// Len returns the number of indexed series.
func (ix *ADSPlus) Len() int { return ix.inner.Count() }
