package dsidx

import (
	"fmt"

	"dsidx/internal/storage"
)

// DiskCollection is a series collection stored behind a (real or simulated)
// device: the substrate of the on-disk indexes. Use SaveCollection /
// OpenDiskCollection for real files, or NewSimulatedDisk to hold the bytes
// in memory while timing behaves like the chosen device profile.
type DiskCollection struct {
	disk  *storage.Disk
	file  *storage.SeriesFile
	close func() error
}

// Len returns the number of series stored.
func (d *DiskCollection) Len() int { return int(d.file.Count()) }

// SeriesLen returns the number of points per series.
func (d *DiskCollection) SeriesLen() int { return d.file.Length() }

// ReadSeries reads one series by position (charged device time).
func (d *DiskCollection) ReadSeries(i int, dst Series) error {
	return d.file.ReadSeries(int64(i), dst)
}

// IOMetrics reports accumulated device accounting.
type IOMetrics = storage.Metrics

// Metrics returns a snapshot of the device counters.
func (d *DiskCollection) Metrics() IOMetrics { return d.disk.Metrics() }

// ResetMetrics zeroes the device counters.
func (d *DiskCollection) ResetMetrics() { d.disk.ResetMetrics() }

// SetLatencyScale adjusts injected latency: 1 is the profile's realtime
// behaviour, 0 disables sleeping (counters still accumulate modeled time).
func (d *DiskCollection) SetLatencyScale(s float64) { d.disk.SetScale(s) }

// Close releases the underlying file, if any.
func (d *DiskCollection) Close() error {
	if d.close != nil {
		return d.close()
	}
	return nil
}

// SaveCollection writes coll to a new series file at path and returns it as
// a DiskCollection with the given device profile.
func SaveCollection(path string, coll *Collection, profile DiskProfile) (*DiskCollection, error) {
	fs, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	if err := fs.Truncate(0); err != nil {
		fs.Close()
		return nil, fmt.Errorf("dsidx: truncating %s: %w", path, err)
	}
	disk := storage.NewDisk(fs, profile)
	disk.SetScale(0) // don't throttle the initial save
	file, err := storage.WriteCollection(disk, coll)
	if err != nil {
		fs.Close()
		return nil, err
	}
	disk.SetScale(1)
	disk.ResetMetrics()
	return &DiskCollection{disk: disk, file: file, close: fs.Close}, nil
}

// OpenDiskCollection opens an existing series file at path with the given
// device profile.
func OpenDiskCollection(path string, profile DiskProfile) (*DiskCollection, error) {
	fs, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	disk := storage.NewDisk(fs, profile)
	file, err := storage.OpenSeriesFile(disk)
	if err != nil {
		fs.Close()
		return nil, err
	}
	return &DiskCollection{disk: disk, file: file, close: fs.Close}, nil
}

// NewSimulatedDisk stores coll in memory behind a latency-injecting device
// with the given profile — the configuration of the paper-reproduction
// experiments (hermetic bytes, realistic timing).
func NewSimulatedDisk(coll *Collection, profile DiskProfile) (*DiskCollection, error) {
	disk := storage.NewDisk(storage.NewMemStore(), profile)
	disk.SetScale(0)
	file, err := storage.WriteCollection(disk, coll)
	if err != nil {
		return nil, err
	}
	disk.SetScale(1)
	disk.ResetMetrics()
	return &DiskCollection{disk: disk, file: file}, nil
}
