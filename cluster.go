package dsidx

import (
	"time"

	"dsidx/internal/cluster"
)

// Cluster is the distributed extension of §V: the collection is
// partitioned across simulated nodes, each holding a local MESSI index;
// queries are answered exactly by scatter-gather. Complementary to the
// single-machine indexes, as the paper describes the DPiSAX line.
type Cluster struct {
	inner *cluster.Cluster
}

// ClusterOptions configures a distributed build.
type ClusterOptions struct {
	// Nodes is the number of partitions (default 4).
	Nodes int
	// WorkersPerNode bounds each node's local parallelism (default 1).
	WorkersPerNode int
	// NetworkLatency simulates the one-way coordinator↔node message cost.
	NetworkLatency time.Duration
}

// NewCluster partitions coll round-robin across simulated nodes and builds
// the local indexes in parallel.
func NewCluster(coll *Collection, copts ClusterOptions, opts ...Option) (*Cluster, error) {
	o := buildOptions(opts)
	inner, err := cluster.Build(coll, cluster.Options{
		Nodes:          copts.Nodes,
		WorkersPerNode: copts.WorkersPerNode,
		NetworkLatency: copts.NetworkLatency,
		Index:          o.coreConfig(),
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Search returns the exact global nearest neighbor of q.
func (c *Cluster) Search(q Series) (Match, error) {
	r, _, err := c.inner.Search(q)
	return matchOf(r), err
}

// SearchKNN returns the exact global k nearest neighbors of q.
func (c *Cluster) SearchKNN(q Series, k int) ([]Match, error) {
	rs, _, err := c.inner.SearchKNN(q, k)
	return matchesOf(rs), err
}

// Close releases every node index's worker pool.
func (c *Cluster) Close() { c.inner.Close() }

// Len returns the total number of indexed series.
func (c *Cluster) Len() int { return c.inner.Len() }

// Nodes returns the partition count.
func (c *Cluster) Nodes() int { return c.inner.Nodes() }
