package dsidx_test

// Public-API coverage for the delete/TTL, sliding-window, and tenant
// surface on both backends: every wrapper is exercised end to end, with
// answers cross-checked against the serial scan and the untenanted
// sibling (exact searches are deterministic, so both must agree).

import (
	"context"
	"testing"
	"time"

	"dsidx"
)

// deleteWindowTenantBackend is the shared method set the public test
// drives on MESSI and Sharded.
type deleteWindowTenantBackend interface {
	Len() int
	Append(s dsidx.Series) (int, error)
	AppendWithTTL(s dsidx.Series, deadline int64) (int, error)
	SetTTL(pos int, deadline int64) error
	ExpireBefore(now int64) int
	Delete(pos int) (bool, error)
	DeleteRange(lo, hi int) (int, error)
	Tombstoned() int
	Live() int
	Compact()
	Search(q dsidx.Series) (dsidx.Match, error)
	SearchWithWorkers(q dsidx.Series, workers int) (dsidx.Match, error)
	SearchWindow(q dsidx.Series, n int) (dsidx.Match, error)
	SearchTenant(q dsidx.Series, tenant string) (dsidx.Match, error)
	SearchKNNTenant(q dsidx.Series, k int, tenant string) ([]dsidx.Match, error)
	SearchDTWTenant(q dsidx.Series, window int, tenant string) (dsidx.Match, error)
	SearchApproximateTenant(q dsidx.Series, tenant string) (dsidx.Match, error)
	SearchWindowTenant(q dsidx.Series, n int, tenant string) (dsidx.Match, error)
	TenantStats() []dsidx.TenantStats
	Serve(ctx context.Context, in <-chan dsidx.QueryRequest) <-chan dsidx.QueryResponse
}

func checkDeleteWindowTenantAPI(t *testing.T, idx deleteWindowTenantBackend, coll *dsidx.Collection) {
	t.Helper()
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, coll.SeriesLen(), 11).At(0)
	base := coll.Len()

	// Delete the true nearest neighbor: no flavor may return it again.
	victim := ScanPos(coll, q)
	newly, err := idx.Delete(victim)
	if err != nil || !newly {
		t.Fatalf("Delete(%d) = %v, %v", victim, newly, err)
	}
	if newly, err := idx.Delete(victim); err != nil || newly {
		t.Fatalf("second Delete(%d) = %v, %v; want no-op", victim, newly, err)
	}
	m, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pos == victim {
		t.Fatalf("Search returned deleted position %d", victim)
	}
	if mw, err := idx.SearchWithWorkers(q, 2); err != nil || mw != m {
		t.Fatalf("SearchWithWorkers %+v, %v; want %+v", mw, err, m)
	}

	// Range delete around the victim; counts exclude the prior tombstone.
	lo, hi := victim-1, victim+2
	if lo < 0 {
		lo, hi = 0, 3
	}
	if hi > base {
		lo, hi = base-3, base
	}
	n, err := idx.DeleteRange(lo, hi)
	if err != nil || n != hi-lo-1 {
		t.Fatalf("DeleteRange(%d,%d) = %d, %v; want %d", lo, hi, n, err, hi-lo-1)
	}
	if _, err := idx.DeleteRange(5, idx.Len()+1); err == nil {
		t.Fatal("out-of-range DeleteRange accepted")
	}
	if got := idx.Tombstoned(); got != hi-lo {
		t.Fatalf("Tombstoned = %d, want %d", got, hi-lo)
	}
	if idx.Live()+idx.Tombstoned() != idx.Len() {
		t.Fatalf("Live %d + Tombstoned %d != Len %d", idx.Live(), idx.Tombstoned(), idx.Len())
	}

	// TTL lifecycle on appended series against a logical clock.
	extra := dsidx.Generate(dsidx.Synthetic, 3, coll.SeriesLen(), 77)
	pos, err := idx.AppendWithTTL(extra.At(0), 100)
	if err != nil || pos != base {
		t.Fatalf("AppendWithTTL pos %d, %v; want %d", pos, err, base)
	}
	if _, err := idx.Append(extra.At(1)); err != nil {
		t.Fatal(err)
	}
	if err := idx.SetTTL(pos, 200); err != nil {
		t.Fatal(err)
	}
	if err := idx.SetTTL(-1, 5); err == nil {
		t.Fatal("SetTTL(-1) accepted")
	}
	if n := idx.ExpireBefore(199); n != 0 {
		t.Fatalf("expired %d before the replaced deadline", n)
	}
	if n := idx.ExpireBefore(200); n != 1 {
		t.Fatalf("expired %d at the deadline, want 1", n)
	}

	// Window queries: a window covering everything equals full search; a
	// window of 1 returns the last landed live series; n <= 0 errors.
	if _, err := idx.SearchWindow(q, 0); err == nil {
		t.Fatal("SearchWindow(0) accepted")
	}
	wide, err := idx.SearchWindow(q, 10*idx.Len())
	if err != nil {
		t.Fatal(err)
	}
	full, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if wide != full {
		t.Fatalf("wide window %+v != full search %+v", wide, full)
	}
	last, err := idx.SearchWindow(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if last.Pos != base+1 {
		t.Fatalf("window 1 answered %d, want last live %d", last.Pos, base+1)
	}

	// Tenant variants answer identically to their untenanted siblings and
	// show up in TenantStats under their ID.
	tm, err := idx.SearchTenant(q, "alpha")
	if err != nil || tm != full {
		t.Fatalf("SearchTenant %+v, %v; want %+v", tm, err, full)
	}
	kms, err := idx.SearchKNNTenant(q, 3, "alpha")
	if err != nil || len(kms) != 3 || kms[0] != full {
		t.Fatalf("SearchKNNTenant %+v, %v", kms, err)
	}
	for _, km := range kms {
		if km.Pos >= lo && km.Pos < hi {
			t.Fatalf("k-NN returned deleted position %d", km.Pos)
		}
	}
	if _, err := idx.SearchDTWTenant(q, 4, "alpha"); err != nil {
		t.Fatal(err)
	}
	am, err := idx.SearchApproximateTenant(q, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if am.Pos >= lo && am.Pos < hi {
		t.Fatalf("approximate returned deleted position %d", am.Pos)
	}
	wm, err := idx.SearchWindowTenant(q, 10*idx.Len(), "alpha")
	if err != nil || wm != full {
		t.Fatalf("SearchWindowTenant %+v, %v; want %+v", wm, err, full)
	}
	ts := idx.TenantStats()
	if len(ts) != 1 || ts[0].Tenant != "alpha" || ts[0].Queries != 5 {
		t.Fatalf("TenantStats %+v; want alpha with 5 queries", ts)
	}

	// Compaction drops the tombstoned entries without changing answers.
	idx.Compact()
	after, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if after != full {
		t.Fatalf("Compact changed the answer: %+v != %+v", after, full)
	}

	// Serve speaks the same surface: a tenanted window query, a plain NN,
	// and two malformed requests that must error rather than misanswer.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	in := make(chan dsidx.QueryRequest, 4)
	in <- dsidx.QueryRequest{ID: 1, Query: q, Kind: dsidx.QueryWindowNN, LastN: 10 * idx.Len(), Tenant: "beta"}
	in <- dsidx.QueryRequest{ID: 2, Query: q}
	in <- dsidx.QueryRequest{ID: 3, Query: q, Kind: dsidx.QueryKNN} // K missing
	in <- dsidx.QueryRequest{ID: 4, Query: q, Kind: dsidx.QueryKind(99)}
	close(in)
	got := map[int64]dsidx.QueryResponse{}
	for resp := range idx.Serve(ctx, in) {
		got[resp.ID] = resp
	}
	if r := got[1]; r.Err != nil || len(r.Matches) != 1 || r.Matches[0] != full {
		t.Fatalf("served window query: %+v", r)
	}
	if r := got[2]; r.Err != nil || len(r.Matches) != 1 || r.Matches[0] != full {
		t.Fatalf("served NN query: %+v", r)
	}
	if got[3].Err == nil || len(got[3].Matches) != 0 {
		t.Fatalf("K-less KNN request answered: %+v", got[3])
	}
	if got[4].Err == nil {
		t.Fatalf("unknown kind answered: %+v", got[4])
	}
	ts = idx.TenantStats()
	if len(ts) != 2 || ts[0].Tenant != "alpha" || ts[1].Tenant != "beta" {
		t.Fatalf("TenantStats after Serve: %+v", ts)
	}
}

// ScanPos returns the serial scan's nearest position.
func ScanPos(coll *dsidx.Collection, q dsidx.Series) int {
	return dsidx.ScanNearest(coll, q).Pos
}

func TestDeleteWindowTenantAPIMESSI(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 400, 64, 11)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(32), dsidx.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	checkDeleteWindowTenantAPI(t, idx, coll)
	h := idx.Health()
	if h.Tombstoned != idx.Tombstoned() || h.Live != idx.Live() {
		t.Fatalf("Health live/tombstoned %+v disagree with %d/%d", h, idx.Live(), idx.Tombstoned())
	}
}

func TestDeleteWindowTenantAPISharded(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 400, 64, 11)
	idx, err := dsidx.NewSharded(coll, dsidx.WithShards(2),
		dsidx.WithLeafCapacity(32), dsidx.WithWorkers(2), dsidx.WithAllowPartial(false))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	checkDeleteWindowTenantAPI(t, idx, coll)
	h := idx.Health()
	if h.Tombstoned != idx.Tombstoned() || h.Live != idx.Live() {
		t.Fatalf("Health live/tombstoned %+v disagree with %d/%d", h, idx.Live(), idx.Tombstoned())
	}
}
