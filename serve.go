package dsidx

import (
	"context"
	"fmt"
	"sync"
)

// Index persistence and serving share one request/response protocol across
// every serving backend: a plain MESSI index and a Sharded index answer the
// same QueryRequest stream through the same loop.

// QueryKind selects the search flavor of a QueryRequest.
type QueryKind int

const (
	// QueryNN is an exact 1-NN Euclidean search (the Search method).
	QueryNN QueryKind = iota
	// QueryKNN is an exact k-NN Euclidean search; set QueryRequest.K.
	QueryKNN
	// QueryDTW is an exact 1-NN DTW search; set QueryRequest.Window.
	QueryDTW
	// QueryApprox is the microsecond approximate search.
	QueryApprox
	// QueryWindowNN is an exact 1-NN search over the most recent LastN
	// landed series (the SearchWindow method); set QueryRequest.LastN.
	QueryWindowNN
)

// QueryRequest is one query submitted to Serve.
type QueryRequest struct {
	// ID is echoed in the response, matching answers to requests (responses
	// arrive in completion order, not submission order).
	ID int64
	// Query is the query series; its length must match the index.
	Query Series
	// Kind selects the search flavor (default QueryNN).
	Kind QueryKind
	// K is the neighbor count for QueryKNN (ignored otherwise).
	K int
	// Window is the Sakoe-Chiba half-width for QueryDTW (ignored otherwise).
	Window int
	// LastN is the window size for QueryWindowNN (ignored otherwise).
	LastN int
	// Tenant is the request's opaque tenant ID ("" means untenanted): its
	// admission queues on the tenant's fair share of the in-flight budget,
	// its execution on the tenant's slice of the worker pool, and the
	// dsidx_tenant_* metric families account it under this ID.
	Tenant string
}

// QueryResponse answers one QueryRequest.
type QueryResponse struct {
	// ID echoes the request's ID.
	ID int64
	// Matches holds the answer: one match for QueryNN/QueryDTW/QueryApprox,
	// up to K for QueryKNN.
	Matches []Match
	// Err reports a per-query failure (e.g. wrong query length).
	Err error
}

// queryBackend is the method set the serving loop multiplexes over,
// implemented by MESSI and Sharded. The tenant-suffixed variants carry the
// request's tenant ID; "" degrades each to its untenanted sibling.
type queryBackend interface {
	SearchTenant(q Series, tenant string) (Match, error)
	SearchKNNTenant(q Series, k int, tenant string) ([]Match, error)
	SearchDTWTenant(q Series, window int, tenant string) (Match, error)
	SearchApproximateTenant(q Series, tenant string) (Match, error)
	SearchWindowTenant(q Series, n int, tenant string) (Match, error)
	admitContext(ctx context.Context, tenant string) (func(), error)
	maxInFlight() int
}

// serve is the shared serving loop behind MESSI.Serve and Sharded.Serve:
// it answers requests from in until in closes or ctx is canceled, then
// closes the returned channel, admitting at most maxInFlight requests at a
// time onto the backend's worker pool.
//
// Every request dequeued from in produces exactly one QueryResponse —
// answered, or carrying Err when cancellation preempted it — so a caller
// that counts its accepted submissions can balance the books after a
// shutdown. The caller must drain the returned channel until it closes;
// its buffer only absorbs the responses in flight at cancellation, it is
// not a substitute for reading.
func serve(ctx context.Context, in <-chan QueryRequest, ix queryBackend) <-chan QueryResponse {
	consumers := ix.maxInFlight()
	// One buffer slot per consumer: a consumer holding a computed (or
	// error) response at cancellation time can always deposit it and
	// exit, even if the reader drains the channel only after the fact.
	out := make(chan QueryResponse, consumers)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-ctx.Done():
						return
					case req, ok := <-in:
						if !ok {
							return
						}
						// The request is dequeued: from here on it must be
						// answered unconditionally. Racing the sends below
						// against ctx.Done() would silently discard a
						// dequeued request about half the time when
						// cancellation and a ready reader are both
						// selectable.
						//
						// Cancellation-aware admission: a canceled server
						// must not wait behind other traffic for a slot, but
						// the preempted request still gets its response,
						// with Err set.
						release, err := ix.admitContext(ctx, req.Tenant)
						if err != nil {
							out <- QueryResponse{ID: req.ID, Err: err}
							return
						}
						resp := answer(ix, req)
						release()
						out <- resp
					}
				}
			}()
		}
		wg.Wait()
	}()
	return out
}

// singleMatch fills a one-match response, leaving Matches empty on error so
// failed responses never carry a plausible-looking sentinel answer.
func (r *QueryResponse) singleMatch(m Match, err error) {
	if err != nil {
		r.Err = err
		return
	}
	r.Matches = []Match{m}
}

// answer dispatches one request to the matching search method.
func answer(ix queryBackend, req QueryRequest) QueryResponse {
	resp := QueryResponse{ID: req.ID}
	switch req.Kind {
	case QueryKNN:
		if req.K <= 0 {
			// Surface the malformed request instead of a silent empty
			// answer (SearchKNN treats k<=0 as a no-op by contract).
			resp.Err = fmt.Errorf("dsidx: QueryKNN request %d needs K > 0, got %d", req.ID, req.K)
			return resp
		}
		ms, err := ix.SearchKNNTenant(req.Query, req.K, req.Tenant)
		resp.Matches, resp.Err = ms, err
	case QueryDTW:
		m, err := ix.SearchDTWTenant(req.Query, req.Window, req.Tenant)
		resp.singleMatch(m, err)
	case QueryApprox:
		m, err := ix.SearchApproximateTenant(req.Query, req.Tenant)
		resp.singleMatch(m, err)
	case QueryWindowNN:
		m, err := ix.SearchWindowTenant(req.Query, req.LastN, req.Tenant)
		resp.singleMatch(m, err)
	case QueryNN:
		m, err := ix.SearchTenant(req.Query, req.Tenant)
		resp.singleMatch(m, err)
	default:
		// An unrecognized kind must not silently run some other search.
		resp.Err = fmt.Errorf("dsidx: request %d has unknown QueryKind %d", req.ID, req.Kind)
	}
	return resp
}
