package dsidx

import (
	"context"
	"path/filepath"
	"testing"
)

func TestShardedPublicAPI(t *testing.T) {
	coll := Generate(Synthetic, 3000, 128, 42)
	queries := GeneratePerturbedQueries(coll, 10, 0.05, 43)

	plain, err := NewMESSI(coll)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	s, err := NewSharded(coll, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Shards() != 4 || s.Len() != coll.Len() {
		t.Fatalf("shards=%d len=%d", s.Shards(), s.Len())
	}
	if st := s.Stats(); st.Series != coll.Len() || st.Leaves == 0 {
		t.Fatalf("merged stats: %+v", st)
	}

	// Sharding must not change any answer: 1-NN, k-NN and DTW all match the
	// unsharded index exactly.
	for i := 0; i < queries.Len(); i++ {
		q := queries.At(i)
		a, err := plain.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: plain %+v != sharded %+v", i, a, b)
		}
		ak, err := plain.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		bk, err := s.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ak) != len(bk) {
			t.Fatalf("query %d: k-NN sizes %d != %d", i, len(ak), len(bk))
		}
		for r := range ak {
			if ak[r] != bk[r] {
				t.Fatalf("query %d rank %d: plain %+v != sharded %+v", i, r, ak[r], bk[r])
			}
		}
		ad, err := plain.SearchDTW(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := s.SearchDTW(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ad != bd {
			t.Fatalf("query %d: DTW plain %+v != sharded %+v", i, ad, bd)
		}
	}

	// Batch and approximate paths.
	qs := make([]Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	ms, stats, err := s.BatchSearchStats(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want, err := plain.Search(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if ms[i] != want {
			t.Fatalf("batch %d: %+v != %+v", i, ms[i], want)
		}
		if stats[i].Observed != coll.Len() {
			t.Fatalf("batch %d observed %d", i, stats[i].Observed)
		}
	}
	if am, err := s.SearchApproximate(qs[0]); err != nil || am.Pos < 0 {
		t.Fatalf("approximate: %+v, %v", am, err)
	}
	if est := s.EngineStats(); est.Tasks == 0 {
		t.Error("sharded queries executed no tasks on the shared pool")
	}
}

func TestShardedAppendSaveOpenRoundTrip(t *testing.T) {
	coll := Generate(Synthetic, 800, 64, 7)
	extra := Generate(SALD, 150, 64, 8)
	s, err := NewSharded(coll, WithShards(3), WithShardPolicy(ShardByHash), WithMergeThreshold(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 100; i++ {
		pos, err := s.Append(extra.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if pos != 800+i {
			t.Fatalf("append %d landed at %d", i, pos)
		}
	}
	s.Flush()
	batch := make([]Series, 50)
	for i := range batch {
		batch[i] = extra.At(100 + i)
	}
	if _, err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	ist := s.IngestStats()
	if ist.Appended != 150 || ist.Merged != 100 || ist.Pending != 50 {
		t.Fatalf("ingest stats: %+v", ist)
	}

	path := filepath.Join(t.TempDir(), "sharded.dsidx")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSharded(path, coll)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Shards() != 3 || s2.Len() != s.Len() {
		t.Fatalf("reopened shards=%d len=%d", s2.Shards(), s2.Len())
	}
	// The appended series keep their global positions across the round trip.
	m, err := s2.Search(extra.At(120))
	if err != nil {
		t.Fatal(err)
	}
	if m.Pos != 920 || m.Distance != 0 {
		t.Fatalf("reopened self-query: %+v", m)
	}
	queries := GeneratePerturbedQueries(coll, 6, 0.05, 9)
	for i := 0; i < queries.Len(); i++ {
		a, err := s.Search(queries.At(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.Search(queries.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d across save: %+v != %+v", i, a, b)
		}
	}

	// Topology conflicts surface as errors.
	if _, err := OpenSharded(path, coll, WithShards(2)); err == nil {
		t.Fatal("OpenSharded accepted a conflicting shard count")
	}
	if _, err := OpenSharded(path, coll, WithShardPolicy(ShardRoundRobin)); err == nil {
		t.Fatal("OpenSharded accepted a conflicting policy")
	}
}

func TestShardedOpensLegacyMESSIFile(t *testing.T) {
	coll := Generate(Synthetic, 500, 64, 17)
	plain, err := NewMESSI(coll, WithMergeThreshold(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	extra := Generate(SALD, 40, 64, 18)
	for i := 0; i < extra.Len(); i++ {
		if _, err := plain.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "plain.dsidx")
	if err := plain.Save(path); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSharded(path, coll)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 1 || s.Len() != plain.Len() {
		t.Fatalf("legacy open: shards=%d len=%d, want 1/%d", s.Shards(), s.Len(), plain.Len())
	}
	queries := GeneratePerturbedQueries(coll, 6, 0.05, 19)
	for i := 0; i < queries.Len(); i++ {
		a, err := plain.Search(queries.At(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Search(queries.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("legacy query %d: %+v != %+v", i, a, b)
		}
	}
}

func TestShardedServePublicAPI(t *testing.T) {
	coll := Generate(Synthetic, 1200, 64, 27)
	queries := GeneratePerturbedQueries(coll, 9, 0.05, 28)
	s, err := NewSharded(coll, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plain, err := NewMESSI(coll)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan QueryRequest)
	out := s.Serve(ctx, in)
	go func() {
		defer close(in)
		for i := 0; i < queries.Len(); i++ {
			req := QueryRequest{ID: int64(i), Query: queries.At(i)}
			switch i % 3 {
			case 1:
				req.Kind = QueryKNN
				req.K = 3
			case 2:
				req.Kind = QueryDTW
				req.Window = 4
			}
			in <- req
		}
	}()
	answered := 0
	for resp := range out {
		if resp.Err != nil {
			t.Fatalf("response %d: %v", resp.ID, resp.Err)
		}
		i := int(resp.ID)
		switch i % 3 {
		case 0:
			want, err := plain.Search(queries.At(i))
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Matches) != 1 || resp.Matches[0] != want {
				t.Fatalf("serve NN %d: %+v != %+v", i, resp.Matches, want)
			}
		case 1:
			want, err := plain.SearchKNN(queries.At(i), 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Matches) != len(want) {
				t.Fatalf("serve KNN %d: %d matches, want %d", i, len(resp.Matches), len(want))
			}
			for r := range want {
				if resp.Matches[r] != want[r] {
					t.Fatalf("serve KNN %d rank %d: %+v != %+v", i, r, resp.Matches[r], want[r])
				}
			}
		case 2:
			want, err := plain.SearchDTW(queries.At(i), 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Matches) != 1 || resp.Matches[0] != want {
				t.Fatalf("serve DTW %d: %+v != %+v", i, resp.Matches, want)
			}
		}
		answered++
	}
	if answered != queries.Len() {
		t.Fatalf("answered %d of %d requests", answered, queries.Len())
	}
}
