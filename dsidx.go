// Package dsidx is a Go implementation of the parallel data series indexes
// of "Data Series Indexing Gone Parallel" (Peng, ICDE 2020; the
// ParIS / ParIS+ / MESSI line of work by Peng, Fatourou and Palpanas).
//
// Data series similarity search — finding the series in a large collection
// with the smallest Euclidean (or DTW) distance to a query — is the core
// operation behind clustering, classification, motif and anomaly detection
// over sequence data. This package provides:
//
//   - MESSI: a parallel in-memory iSAX index answering exact 1-NN, k-NN and
//     DTW queries in milliseconds on millions of series.
//   - ParIS and ParIS+: parallel indexes for on-disk collections, with
//     index construction pipelined against disk I/O.
//   - ADSPlus: the serial ADS+ baseline.
//   - UCR-Suite-style scans (serial and parallel) as brute-force baselines.
//   - Deterministic dataset generators for the paper's three workload
//     families, and a storage layer with simulated HDD/SSD device profiles
//     for reproducing the paper's on-disk experiments.
//
// # Quick start
//
//	coll := dsidx.Generate(dsidx.Synthetic, 100_000, 256, 42)
//	idx, err := dsidx.NewMESSI(coll)
//	if err != nil { ... }
//	defer idx.Close()
//	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 256, 42).At(0)
//	m, err := idx.Search(q)
//	fmt.Printf("nearest series: #%d at distance %.3f\n", m.Pos, m.Distance)
//
// # Concurrent queries
//
// A MESSI index owns a persistent worker pool (sized by WithWorkers) that
// every query shares: rather than one query fanning out over all cores, the
// tasks of all in-flight queries interleave on the pool, so the index
// serves many clients at once without oversubscribing the machine. All
// methods are safe for concurrent use; three idioms cover most workloads:
//
//	// Independent goroutines: just call Search concurrently.
//	go func() { m, _ := idx.Search(q1); ... }()
//	go func() { m, _ := idx.Search(q2); ... }()
//
//	// A fixed batch: one call answers qs[i] into ms[i].
//	ms, err := idx.BatchSearch(qs)
//
//	// A long-running server: stream requests in, responses out.
//	in := make(chan dsidx.QueryRequest)
//	out := idx.Serve(ctx, in)
//	in <- dsidx.QueryRequest{ID: 7, Query: q, Kind: dsidx.QueryKNN, K: 10}
//	resp := <-out // completion order; match by resp.ID
//
// BatchSearch and Serve admit at most WithMaxInFlight queries at a time
// (default 2× workers) — the backpressure that bounds scratch memory under
// bursty traffic. EngineStats exposes the pool's throughput counters.
// Concurrency changes only scheduling, never answers: every result is
// identical to the same query issued alone.
//
// # Live ingestion
//
// A MESSI index also accepts writes while serving: Append and AppendBatch
// add series concurrently with queries. New series land in a delta buffer
// and are summarized on arrival; queries exact-scan the buffer alongside
// the tree, so every answer remains exact over everything the query
// observed. Once the buffer reaches WithMergeThreshold series, a
// background merge (on the same worker pool) folds it into the tree
// without blocking readers. Flush forces a merge; IngestStats reports the
// pending/merged split; Save persists the buffer so no append is lost.
//
//	pos, err := idx.Append(s)        // visible to queries on return
//	m, err := idx.Search(s)          // finds it, merged or not
//	idx.Flush()                      // optional: fold the delta in now
//
// # Sharding
//
// NewSharded partitions the collection across N independent MESSI shards
// (WithShards, WithShardPolicy) that answer as one index: queries scatter
// to every shard with a single shared best-so-far — a tight bound found on
// one shard prunes the others mid-flight — and gather answers in the
// collection's global position space, so results are identical to the
// unsharded index. All shards share one worker pool and one admission
// budget; appends route by policy and publish one consistent cross-shard
// cut. Sharded indexes persist as a DSS1 manifest over the per-shard files
// (Save / OpenSharded); plain MESSI files open as a 1-shard instance.
//
//	s, err := dsidx.NewSharded(coll, dsidx.WithShards(4))
//	m, err := s.Search(q)            // same answer as the unsharded index
//
// All distances returned through this package are true (not squared)
// distances. Search, SearchKNN and SearchDTW are exact: they return
// provably the nearest series. Only the explicitly named
// SearchApproximate methods trade that guarantee for microsecond
// latencies.
package dsidx

import (
	"math"

	"dsidx/internal/core"
	"dsidx/internal/gen"
	"dsidx/internal/series"
	"dsidx/internal/storage"
)

// Series is a single data series: an ordered sequence of float32 values.
type Series = series.Series

// Collection is a contiguous in-memory set of equal-length series.
type Collection = series.Collection

// NewCollection allocates a collection of n series of the given length.
func NewCollection(n, length int) *Collection { return series.NewCollection(n, length) }

// CollectionFromValues wraps a flat value slice (length must divide it).
func CollectionFromValues(values []float32, length int) (*Collection, error) {
	return series.CollectionFromValues(values, length)
}

// Match is a search answer: the position of the matching series in its
// collection and its true (unsquared) distance to the query.
type Match struct {
	Pos      int
	Distance float64
}

// matchOf converts an internal squared-distance result.
func matchOf(r core.Result) Match {
	return Match{Pos: int(r.Pos), Distance: math.Sqrt(r.Dist)}
}

// matchesOf converts a slice of internal results.
func matchesOf(rs []core.Result) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = matchOf(r)
	}
	return out
}

// DatasetKind selects one of the paper's dataset families.
type DatasetKind = gen.Kind

// Dataset families (paper §IV): Synthetic is a random walk; SALD and
// Seismic are synthetic stand-ins for the EEG and seismology collections.
const (
	Synthetic = gen.Synthetic
	SALD      = gen.SALD
	Seismic   = gen.Seismic
)

// Generate deterministically produces n series of the given kind and
// length (length 0 uses the paper's default for the family). The same
// (kind, n, length, seed) always yields the same collection.
func Generate(kind DatasetKind, n, length int, seed int64) *Collection {
	return gen.Generator{Kind: kind, Length: length, Seed: seed}.Collection(n)
}

// GenerateQueries produces n query series from the same family but disjoint
// from any Generate output with the same seed.
func GenerateQueries(kind DatasetKind, n, length int, seed int64) *Collection {
	return gen.Generator{Kind: kind, Length: length, Seed: seed}.Queries(n)
}

// GeneratePerturbedQueries produces n queries by adding relative Gaussian
// noise eps to random members of coll. Perturbed queries have a nearby
// nearest neighbor, reproducing on small collections the pruning regime
// that dense, very large collections exhibit naturally — use them for
// benchmark workloads (see DESIGN.md).
func GeneratePerturbedQueries(coll *Collection, n int, eps float64, seed int64) *Collection {
	return gen.Generator{Seed: seed}.PerturbedQueries(coll, n, eps)
}

// Windows extracts every window of the given length from a long recording,
// advancing by step points and optionally z-normalizing each window — how
// streaming series become indexable collections (paper §II: "for streaming
// series, we create and index subsequences of length n using a sliding
// window"). It returns the windows and each window's start offset in s.
func Windows(s Series, length, step int, znormalize bool) (*Collection, []int, error) {
	return series.Windows(s, length, step, znormalize)
}

// IndexStats describes the shape of a built index tree.
type IndexStats struct {
	Series      int
	RootNodes   int
	InnerNodes  int
	Leaves      int
	MaxDepth    int
	LeafFillAvg float64
}

func statsOf(t *core.Tree) IndexStats {
	st := t.Stats()
	return IndexStats{
		Series:      st.Series,
		RootNodes:   st.RootNodes,
		InnerNodes:  st.Inner,
		Leaves:      st.Leaves,
		MaxDepth:    st.MaxDepth,
		LeafFillAvg: st.FillAvg,
	}
}

// options collects tunables shared by every index constructor.
type options struct {
	segments       int
	maxBits        int
	leafCapacity   int
	workers        int
	queueCount     int
	batchSeries    int
	maxInFlight    int
	mergeThreshold int
	probeLeaves    int
	leafRawOff     bool
	autoTune       bool
	shards         int
	shardPolicy    ShardPolicy
	shardPolicySet bool
	allowPartial   bool
}

// Option customizes index construction.
type Option func(*options)

// WithSegments sets the number of PAA/iSAX segments (default 16, the
// paper's w). The series length must be a multiple of it.
func WithSegments(w int) Option { return func(o *options) { o.segments = w } }

// WithMaxCardinalityBits sets the maximum per-segment cardinality in bits
// (default 8, i.e. 256 regions).
func WithMaxCardinalityBits(b int) Option { return func(o *options) { o.maxBits = b } }

// WithLeafCapacity sets the maximum leaf size before splitting (default 256).
func WithLeafCapacity(c int) Option { return func(o *options) { o.leafCapacity = c } }

// WithWorkers sets the number of worker goroutines for index construction
// and (as the default) query answering. 0 means GOMAXPROCS.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithQueueCount sets the number of concurrent priority queues MESSI uses
// during query answering (default: half the workers).
func WithQueueCount(n int) Option { return func(o *options) { o.queueCount = n } }

// WithBatchSeries sets the memory budget, in series, of each ParIS
// bulk-loading cycle (default 65536).
func WithBatchSeries(n int) Option { return func(o *options) { o.batchSeries = n } }

// WithMaxInFlight bounds the number of queries BatchSearch and Serve admit
// simultaneously (default: 2× the worker count). Each admitted query pins a
// pooled scratch buffer, so this is the serving engine's memory/latency
// knob: higher keeps the pool saturated under bursty traffic, lower bounds
// the working set.
func WithMaxInFlight(n int) Option { return func(o *options) { o.maxInFlight = n } }

// WithMergeThreshold sets the delta-buffer size (in series) at which a
// MESSI index schedules a background merge of live appends into its tree
// (default 4096). Queries are exact at any setting — unmerged series are
// exact-scanned — so the threshold only trades merge frequency against
// per-query delta-scan cost.
func WithMergeThreshold(n int) Option { return func(o *options) { o.mergeThreshold = n } }

// WithProbeLeaves sets how many index leaves a MESSI exact search probes to
// seed its best-so-far distance before pruning the tree (default 2; 1
// restores the paper's classic single-leaf approximate seed). Each probe
// costs a few candidate distances up front and buys a tighter initial
// bound, so more of the index is pruned without ever being touched.
func WithProbeLeaves(p int) Option { return func(o *options) { o.probeLeaves = p } }

// WithAutoTune enables the self-tuning feedback loop (default off): the
// index watches its own query/append mix and adjusts the live probe-leaf
// count and merge threshold around the configured values — more probes and
// eager merges under query-heavy traffic, fewer probes and batched merges
// under append-heavy traffic. Tuning never changes answers: ProbeLeaves
// only seeds the best-so-far bound of an exact search, and MergeThreshold
// only decides when pending appends (already searched exactly) move into
// the tree. Inspect the live values with Metrics().Tuning.
func WithAutoTune(enabled bool) Option { return func(o *options) { o.autoTune = enabled } }

// WithLeafMaterialization toggles MESSI's leaf-ordered raw storage
// (default enabled): every index leaf keeps a contiguous copy of its
// series' values, so query refinement streams sequential memory instead of
// chasing candidate positions through the collection. The copy doubles raw
// memory; disable it to trade that memory back for slower (random-access)
// refinement on very large collections.
func WithLeafMaterialization(enabled bool) Option {
	return func(o *options) { o.leafRawOff = !enabled }
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (o options) coreConfig() core.Config {
	return core.Config{
		Segments:     o.segments,
		MaxBits:      o.maxBits,
		LeafCapacity: o.leafCapacity,
	}
}

// DiskProfile models a storage device's latency and bandwidth. Reads and
// writes through a DiskCollection sleep according to the profile, so
// experiments on simulated devices reproduce the cost structure of the
// paper's HDD/SSD testbed.
type DiskProfile = storage.Profile

// Predefined device profiles.
var (
	// HDD models a 7200rpm spinning disk (expensive seeks).
	HDD = storage.HDD
	// SSD models a SATA SSD (cheap random access).
	SSD = storage.SSD
	// Unthrottled injects no latency (pure functional testing).
	Unthrottled = storage.Unthrottled
)
