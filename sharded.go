package dsidx

import (
	"context"
	"fmt"

	"dsidx/internal/messi"
	"dsidx/internal/shard"
)

// ShardPolicy selects how a Sharded index routes series to shards.
type ShardPolicy int

const (
	// ShardRoundRobin routes series by arrival order (series i to shard
	// i mod N): near-equal shard sizes, content-independent — the default.
	ShardRoundRobin ShardPolicy = iota
	// ShardByHash routes each series by a hash of its values, so identical
	// series always land on the same shard regardless of arrival order.
	ShardByHash
)

func (p ShardPolicy) internal() (shard.Policy, error) {
	switch p {
	case ShardRoundRobin:
		return shard.RoundRobin{}, nil
	case ShardByHash:
		return shard.HashSeries{}, nil
	default:
		return nil, fmt.Errorf("dsidx: unknown ShardPolicy %d", p)
	}
}

// WithShards partitions a Sharded index into n shards (default 1; at most
// 256). More shards parallelize builds and merges coarsely and cap each
// tree's size; queries scatter-gather over all of them with one shared
// best-so-far, so answers are unchanged.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithShardPolicy selects the routing policy of a Sharded index (default
// ShardRoundRobin). When opening a saved index, the file's recorded policy
// wins; passing a different one explicitly is an error.
func WithShardPolicy(p ShardPolicy) Option {
	return func(o *options) { o.shardPolicy, o.shardPolicySet = p, true }
}

// WithAllowPartial opts a Sharded index into best-effort answers when
// shards are unavailable (quarantined after repeated device failures, or
// failing mid-query): instead of the whole query failing with a typed
// shards-unavailable error, it answers from the shards still serving and
// reports the gap in SearchStats.UncoveredShards. Off by default — a
// partial answer is no longer guaranteed to be the exact nearest neighbor,
// so callers must opt in explicitly.
func WithAllowPartial(enabled bool) Option {
	return func(o *options) { o.allowPartial = enabled }
}

// Sharded is a partitioned MESSI index: the collection is split across N
// independent shards — each a full MESSI index — that answer as one.
// Search variants scatter to every shard with a single shared best-so-far
// (a bound found on one shard prunes the others mid-flight) and gather
// results in the collection's global position space, so every answer is
// identical to the same query against an unsharded index. All shards share
// one worker pool and one admission budget, so WithWorkers and
// WithMaxInFlight govern the whole sharded index, not each shard.
//
// The full MESSI surface is available: exact 1-NN/k-NN/DTW and approximate
// search, BatchSearch, live Append/AppendBatch with background merges,
// Flush, Serve, persistence (Save/OpenSharded) and merged stats.
type Sharded struct {
	inner *shard.Sharded
}

// shardOptions converts public options to the internal shard form. The
// policy stays nil when not explicitly chosen, so loading a saved index
// adopts the file's recorded policy instead of conflicting with it.
func (o options) shardOptions() (shard.Options, error) {
	var policy shard.Policy
	if o.shardPolicySet {
		var err error
		if policy, err = o.shardPolicy.internal(); err != nil {
			return shard.Options{}, err
		}
	}
	return shard.Options{
		Shards:       o.shards,
		Policy:       policy,
		AllowPartial: o.allowPartial,
		Options: messi.Options{
			Workers:        o.workers,
			QueueCount:     o.queueCount,
			MaxInFlight:    o.maxInFlight,
			MergeThreshold: o.mergeThreshold,
			ProbeLeaves:    o.probeLeaves,
			DisableLeafRaw: o.leafRawOff,
			AutoTune:       o.autoTune,
		},
	}, nil
}

// NewSharded builds a sharded MESSI index over an in-memory collection,
// partitioned by WithShards and WithShardPolicy.
func NewSharded(coll *Collection, opts ...Option) (*Sharded, error) {
	o := buildOptions(opts)
	so, err := o.shardOptions()
	if err != nil {
		return nil, err
	}
	inner, err := shard.Build(coll, o.coreConfig(), so)
	if err != nil {
		return nil, err
	}
	return &Sharded{inner: inner}, nil
}

// Save writes the sharded index to path: a DSS1 manifest wrapping every
// shard's own index encoding, live-append stores included.
func (s *Sharded) Save(path string) error {
	return writeFileAtomic(path, s.inner.Encode())
}

// OpenSharded reopens a saved sharded index over the collection it was
// built from. The file defines the shard count and policy; WithShards and
// WithShardPolicy, when given, must match it. A pre-sharding single-index
// file (as written by MESSI.Save) opens as a 1-shard instance with
// unchanged positions and answers.
func OpenSharded(path string, coll *Collection, opts ...Option) (*Sharded, error) {
	data, err := readIndexFile(path)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	// shardOptions leaves Shards 0 and Policy nil when unset, which Decode
	// reads as "whatever the file says".
	so, err := o.shardOptions()
	if err != nil {
		return nil, err
	}
	inner, err := shard.Decode(data, coll, so)
	if err != nil {
		return nil, err
	}
	return &Sharded{inner: inner}, nil
}

// Close releases every shard's reference to the shared worker pool; the
// pool stops after the last one. Idempotent and safe with queries in
// flight.
func (s *Sharded) Close() { s.inner.Close() }

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return s.inner.Shards() }

// Len returns the number of indexed series across all shards, live
// appends included.
func (s *Sharded) Len() int { return s.inner.Count() }

// Stats merges the shards' tree shapes into one aggregate view.
func (s *Sharded) Stats() IndexStats {
	var out IndexStats
	leaves := 0
	for si := 0; si < s.inner.Shards(); si++ {
		st := statsOf(s.inner.Shard(si).Tree())
		out.Series += st.Series
		out.RootNodes += st.RootNodes
		out.InnerNodes += st.InnerNodes
		out.Leaves += st.Leaves
		out.MaxDepth = max(out.MaxDepth, st.MaxDepth)
		out.LeafFillAvg += st.LeafFillAvg * float64(st.Leaves)
		leaves += st.Leaves
	}
	if leaves > 0 {
		out.LeafFillAvg /= float64(leaves)
	}
	return out
}

// Search returns the exact nearest neighbor of q under Euclidean distance,
// scatter-gathered over every shard with one shared best-so-far.
func (s *Sharded) Search(q Series) (Match, error) {
	r, _, err := s.inner.Search(q, 0)
	return matchOf(r), err
}

// SearchWithWorkers is Search with an explicit per-shard worker count (for
// scaling studies).
func (s *Sharded) SearchWithWorkers(q Series, workers int) (Match, error) {
	r, _, err := s.inner.Search(q, workers)
	return matchOf(r), err
}

// SearchKNN returns the exact k nearest neighbors of q in ascending
// distance order; one k-best set is shared by every shard.
func (s *Sharded) SearchKNN(q Series, k int) ([]Match, error) {
	rs, _, err := s.inner.SearchKNN(q, k, 0)
	return matchesOf(rs), err
}

// SearchDTW returns the exact nearest neighbor of q under dynamic time
// warping with a Sakoe-Chiba band of half-width window.
func (s *Sharded) SearchDTW(q Series, window int) (Match, error) {
	r, _, err := s.inner.SearchDTW(q, window, 0)
	return matchOf(r), err
}

// SearchApproximate returns the best answer among every shard's
// approximate probe, still in microseconds; its distance upper-bounds the
// exact answer's.
func (s *Sharded) SearchApproximate(q Series) (Match, error) {
	r, err := s.inner.SearchApproximate(q)
	return matchOf(r), err
}

// SearchWindow returns the exact nearest neighbor of q among the most
// recent n landed series across all shards — the window is a consistent
// global suffix captured at call time, regardless of how appends were
// routed, minus deleted series.
func (s *Sharded) SearchWindow(q Series, n int) (Match, error) {
	r, _, err := s.inner.SearchWindow(q, n, 0)
	return matchOf(r), err
}

// SearchTenant is Search under an opaque tenant ID (see MESSI.SearchTenant;
// the fairness machinery is the shared pool's, so it spans all shards).
func (s *Sharded) SearchTenant(q Series, tenant string) (Match, error) {
	r, _, err := s.inner.SearchScoped(q, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchKNNTenant is SearchKNN under an opaque tenant ID.
func (s *Sharded) SearchKNNTenant(q Series, k int, tenant string) ([]Match, error) {
	rs, _, err := s.inner.SearchKNNScoped(q, k, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchesOf(rs), err
}

// SearchDTWTenant is SearchDTW under an opaque tenant ID.
func (s *Sharded) SearchDTWTenant(q Series, window int, tenant string) (Match, error) {
	r, _, err := s.inner.SearchDTWScoped(q, window, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchApproximateTenant is SearchApproximate under an opaque tenant ID.
func (s *Sharded) SearchApproximateTenant(q Series, tenant string) (Match, error) {
	r, err := s.inner.SearchApproximateScoped(q, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchWindowTenant is SearchWindow under an opaque tenant ID.
func (s *Sharded) SearchWindowTenant(q Series, n int, tenant string) (Match, error) {
	r, _, err := s.inner.SearchWindowTenant(q, n, 0, tenant)
	return matchOf(r), err
}

// BatchSearch answers one exact 1-NN query per element of qs concurrently
// under the shared admission budget; results[i] answers qs[i].
func (s *Sharded) BatchSearch(qs []Series) ([]Match, error) {
	rs, err := s.inner.BatchSearch(qs)
	return matchesOf(rs), err
}

// BatchSearchStats is BatchSearch additionally returning each query's
// merged cross-shard work stats.
func (s *Sharded) BatchSearchStats(qs []Series) ([]Match, []SearchStats, error) {
	rs, sts, err := s.inner.BatchSearchStats(qs)
	stats := make([]SearchStats, len(sts))
	for i, st := range sts {
		stats[i] = statsFromQuery(st)
	}
	return matchesOf(rs), stats, err
}

// Append routes one series to its shard and returns its global position
// (positions continue past the build-time collection, in arrival order).
// The series is visible to queries before Append returns.
func (s *Sharded) Append(ser Series) (int, error) { return s.inner.Append(ser) }

// AppendBatch adds a batch at consecutive global positions, returning the
// first; the batch becomes visible atomically across all shards.
func (s *Sharded) AppendBatch(ss []Series) (int, error) { return s.inner.AppendBatch(ss) }

// Flush synchronously merges every shard's pending appends into its tree.
func (s *Sharded) Flush() { s.inner.Flush() }

// Delete removes the series at global position pos from every future
// search on every shard (see MESSI.Delete). Reports whether this call
// newly deleted it.
func (s *Sharded) Delete(pos int) (bool, error) { return s.inner.Delete(pos) }

// DeleteRange deletes every series at global positions [lo, hi),
// returning how many this call newly deleted.
func (s *Sharded) DeleteRange(lo, hi int) (int, error) { return s.inner.DeleteRange(lo, hi) }

// AppendWithTTL is Append with an expiry deadline attached (see
// MESSI.AppendWithTTL); the deadline routes to whichever shard receives
// the series.
func (s *Sharded) AppendWithTTL(ser Series, deadline int64) (int, error) {
	return s.inner.AppendWithTTL(ser, deadline)
}

// SetTTL sets (or replaces) the expiry deadline on the series at global
// position pos.
func (s *Sharded) SetTTL(pos int, deadline int64) error { return s.inner.SetTTL(pos, deadline) }

// ExpireBefore deletes every series whose TTL deadline is at or before
// now, across all shards, returning how many it newly deleted.
func (s *Sharded) ExpireBefore(now int64) int { return s.inner.ExpireBefore(now) }

// Tombstoned counts deleted (or expired) series across all shards; Live
// counts the rest. Len() == Live() + Tombstoned().
func (s *Sharded) Tombstoned() int { return s.inner.Tombstoned() }

// Live counts landed-and-not-deleted series across all shards.
func (s *Sharded) Live() int { return s.inner.Live() }

// Compact synchronously flushes every shard and rebuilds its tree without
// tombstoned entries.
func (s *Sharded) Compact() { s.inner.Compact() }

// TenantStats snapshots the shared pool's per-tenant accounting, sorted by
// tenant ID.
func (s *Sharded) TenantStats() []TenantStats { return tenantStatsOf(s.inner.TenantStats()) }

// IngestStats merges the shards' write-path counters.
func (s *Sharded) IngestStats() IngestStats {
	return ingestStatsOf(s.inner.IngestStats())
}

// EngineStats snapshots the one worker pool all shards share — already the
// aggregate view of the sharded index's execution.
// ShardHealth is one shard's serving condition inside a Sharded index.
type ShardHealth struct {
	// State is "serving", "quarantined" (repeated permanent device
	// failures; queries skip the shard) or "restaging" (being rewritten
	// onto a fresh store).
	State string
	// Cold reports whether the shard's base values live on the
	// out-of-core tier.
	Cold bool
	// Failures counts queries the shard failed with a storage-classified
	// error; PermanentFailures is the permanent subset.
	Failures          uint64
	PermanentFailures uint64
	// Quarantines and Restages count lifecycle transitions.
	Quarantines uint64
	Restages    uint64
	// LastError describes the most recent storage failure ("" when none).
	LastError string
}

// ShardedHealth is a Sharded index's liveness snapshot: the aggregate
// query/merge failure counters plus each shard's serving state.
type ShardedHealth struct {
	// Searches, FailedSearches and MergeAborts aggregate the per-shard
	// counters (see Health on MESSI).
	Searches       uint64
	FailedSearches uint64
	MergeAborts    uint64
	// TaskPanics and BgPanics are the shared pool's containment counters.
	TaskPanics uint64
	BgPanics   uint64
	// Live and Tombstoned partition the landed series across shards into
	// searchable and deleted/expired.
	Live       int
	Tombstoned int
	// Shards holds one entry per shard; Quarantined lists the ids not
	// currently serving, ascending.
	Shards      []ShardHealth
	Quarantined []int
}

// Health snapshots the index's serving condition. Safe to call
// concurrently with queries, appends and background re-stages.
func (s *Sharded) Health() ShardedHealth {
	h := s.inner.Health()
	out := ShardedHealth{
		Searches:       h.Searches,
		FailedSearches: h.FailedSearches,
		MergeAborts:    h.MergeAborts,
		TaskPanics:     h.TaskPanics,
		BgPanics:       h.BgPanics,
		Live:           h.Live,
		Tombstoned:     h.Tombstoned,
		Shards:         make([]ShardHealth, len(h.Shards)),
		Quarantined:    h.Quarantined,
	}
	for i, sh := range h.Shards {
		out.Shards[i] = ShardHealth{
			State:             sh.State.String(),
			Cold:              sh.Cold,
			Failures:          sh.Failures,
			PermanentFailures: sh.PermanentFailures,
			Quarantines:       sh.Quarantines,
			Restages:          sh.Restages,
			LastError:         sh.LastError,
		}
	}
	return out
}

func (s *Sharded) EngineStats() EngineStats {
	return engineStatsOf(s.inner.EngineStats())
}

// Serve turns the sharded index into a long-running query server over the
// same request/response protocol as MESSI.Serve; one admission slot covers
// one request's whole cross-shard scatter. Every dequeued request produces
// exactly one response — drain the returned channel until it closes.
func (s *Sharded) Serve(ctx context.Context, in <-chan QueryRequest) <-chan QueryResponse {
	return serve(ctx, in, s)
}

func (s *Sharded) admitContext(ctx context.Context, tenant string) (func(), error) {
	return s.inner.AdmitTenantContext(ctx, tenant)
}
func (s *Sharded) maxInFlight() int { return s.inner.MaxInFlight() }
