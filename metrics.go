package dsidx

import (
	"net/http"
	"time"

	"dsidx/internal/metrics"
	"dsidx/internal/vector"
)

// Observability: every index keeps its throughput, ingestion, cache and
// tuning counters behind two complementary surfaces. Metrics() returns a
// one-call structured snapshot for programmatic use; MetricsHandler
// exposes the same counters in Prometheus text exposition format for
// scraping. Both are pull-based reads of counters the hot paths already
// maintain — neither adds per-query work.

// MetricsSource is an index that can expose its metrics registry: MESSI
// and Sharded implement it. The registry is built lazily on first use and
// lives for the index's lifetime, so handler scrapes are cheap reads.
type MetricsSource interface {
	metricsRegistry() *metrics.Registry
}

func (ix *MESSI) metricsRegistry() *metrics.Registry  { return ix.inner.Registry() }
func (s *Sharded) metricsRegistry() *metrics.Registry { return s.inner.Registry() }

// VectorImpl reports the distance-kernel implementation that will serve
// the next query: "avx2" on amd64 CPUs where startup feature detection
// found AVX2 support (and ForceScalarKernels is off), "scalar" on every
// other CPU, on builds with the purego build tag, and under
// ForceScalarKernels(true). The implementations are bit-identical, so
// this is a throughput property, never a correctness one.
func VectorImpl() string { return vector.Impl() }

// ForceScalarKernels is the runtime escape hatch for the SIMD distance
// kernels: ForceScalarKernels(true) routes every subsequent kernel call
// to the pure-Go scalar implementation even where AVX2 was detected;
// ForceScalarKernels(false) restores detection's choice. Safe to toggle
// while queries are in flight — answers are bit-identical either way.
// Process-global, like the CPU it describes.
func ForceScalarKernels(v bool) { vector.ForceScalar(v) }

// MetricsHandler returns an http.Handler serving src's metrics in
// Prometheus text exposition format (version 0.0.4). Mount it wherever
// the scraper looks:
//
//	http.Handle("/metrics", dsidx.MetricsHandler(idx))
//
// The handler is safe for concurrent scrapes while the index serves
// queries and ingests appends.
func MetricsHandler(src MetricsSource) http.Handler {
	return src.metricsRegistry().Handler()
}

// TuningStats reports the self-tuning state (the WithAutoTune option):
// the live knob values and how often the feedback loop has moved them.
type TuningStats struct {
	// AutoTune reports whether the feedback loop is active.
	AutoTune bool
	// ProbeLeaves is the live probe count (== the configured value when
	// AutoTune is off). For a sharded index this is shard 0's live value.
	ProbeLeaves int
	// MergeThreshold is the live merge threshold.
	MergeThreshold int
	// Adjustments counts knob changes applied since creation (summed
	// over all shards for a sharded index).
	Adjustments uint64
}

// ShardStats reports one shard's routing counters.
type ShardStats struct {
	// Shard is the shard number.
	Shard int
	// BaseSeries is the number of build-time series placed in the shard.
	BaseSeries int
	// Appends is the number of live appends routed to the shard.
	Appends int
}

// ColdTierStats reports the out-of-core tier's cache and device counters;
// the zero value when every shard is hot (or the index is not sharded).
type ColdTierStats struct {
	// ColdShards is the number of shards placed on the cold tier.
	ColdShards int
	// Block-cache counters: hits, misses (each a device read), blocks
	// evicted, decoded bytes resident, and the configured budget.
	CacheHits          uint64
	CacheMisses        uint64
	CacheEvictions     uint64
	CacheResidentBytes int64
	CacheBudgetBytes   int64
	// Device counters: read operations, bytes read, non-sequential reads
	// charged seek latency, and modeled device time serving reads.
	DeviceReads     int64
	DeviceBytesRead int64
	DeviceSeeks     int64
	DeviceReadBusy  time.Duration
}

// Metrics is a structured snapshot of every counter surface an index
// maintains, taken in one call. Each section is individually consistent
// (see its type's documentation); sections are sampled back to back, not
// under one global lock.
type Metrics struct {
	Engine EngineStats
	Ingest IngestStats
	Tuning TuningStats
	// VectorImpl is the distance-kernel implementation serving queries:
	// "avx2" on amd64 CPUs where startup detection found AVX2 (and the
	// ForceScalar escape hatch is off), "scalar" everywhere else. The
	// two implementations are bit-identical, so this changes throughput,
	// never answers.
	VectorImpl string
	// Shards has one entry per shard for a sharded index, nil for MESSI.
	Shards []ShardStats
	// Cold is the out-of-core tier's counters; zero when all-hot.
	Cold ColdTierStats
}

// Metrics snapshots all of the index's counter surfaces in one call.
func (ix *MESSI) Metrics() Metrics {
	tu := ix.inner.Tuning()
	return Metrics{
		Engine: ix.EngineStats(),
		Ingest: ix.IngestStats(),
		Tuning: TuningStats{
			AutoTune:       tu.AutoTune,
			ProbeLeaves:    tu.ProbeLeaves,
			MergeThreshold: tu.MergeThreshold,
			Adjustments:    tu.Adjustments,
		},
		VectorImpl: vector.Impl(),
	}
}

// Metrics snapshots all of the sharded index's counter surfaces in one
// call, per-shard routing counters and the cold tier included.
func (s *Sharded) Metrics() Metrics {
	tu := s.inner.Tuning()
	cold := s.inner.ColdStats()
	shards := make([]ShardStats, s.Shards())
	for si := range shards {
		shards[si] = ShardStats{
			Shard:      si,
			BaseSeries: s.inner.ShardBaseLen(si),
			Appends:    s.inner.ShardAppends(si),
		}
	}
	return Metrics{
		Engine: s.EngineStats(),
		Ingest: s.IngestStats(),
		Tuning: TuningStats{
			AutoTune:       tu.AutoTune,
			ProbeLeaves:    tu.ProbeLeaves,
			MergeThreshold: tu.MergeThreshold,
			Adjustments:    tu.Adjustments,
		},
		VectorImpl: vector.Impl(),
		Shards:     shards,
		Cold: ColdTierStats{
			ColdShards:         cold.ColdShards,
			CacheHits:          cold.Cache.Hits,
			CacheMisses:        cold.Cache.Misses,
			CacheEvictions:     cold.Cache.Evictions,
			CacheResidentBytes: cold.Cache.ResidentBytes,
			CacheBudgetBytes:   cold.Cache.CacheBytes,
			DeviceReads:        cold.Device.ReadOps,
			DeviceBytesRead:    cold.Device.BytesRead,
			DeviceSeeks:        cold.Device.Seeks,
			DeviceReadBusy:     cold.Device.ReadBusy,
		},
	}
}
