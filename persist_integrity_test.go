package dsidx_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dsidx"
	"dsidx/internal/storage"
)

// saveSmallMESSI builds and saves a small index, returning the path and a
// query whose answer pins the decoded content.
func saveSmallMESSI(t *testing.T) (string, *dsidx.Collection, dsidx.Series, dsidx.Match) {
	t.Helper()
	coll := dsidx.Generate(dsidx.Synthetic, 600, 64, 23)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 64, 23).At(0)
	want, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	return path, coll, q, want
}

// TestLoadRejectsChecksumMismatch flips one byte of a saved index: the
// load must fail with the typed corruption error, never decode a wrong
// index.
func TestLoadRejectsChecksumMismatch(t *testing.T) {
	path, coll, _, _ := saveSmallMESSI(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = dsidx.LoadMESSI(path, coll)
	if err == nil {
		t.Fatal("corrupted index loaded without error")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("corruption surfaced untyped: %v", err)
	}
}

// TestLoadAcceptsLegacyFileWithoutTrailer strips the integrity trailer —
// the shape of every file saved before it existed — and the load must
// still succeed with identical answers.
func TestLoadAcceptsLegacyFileWithoutTrailer(t *testing.T) {
	path, coll, q, want := saveSmallMESSI(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := dsidx.LoadMESSI(path, coll)
	if err != nil {
		t.Fatalf("legacy trailer-less file failed to load: %v", err)
	}
	defer idx.Close()
	got, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("legacy load answered %+v, want %+v", got, want)
	}
}

// TestOpenShardedRejectsChecksumMismatch gives the sharded manifest the
// same bit-flip treatment.
func TestOpenShardedRejectsChecksumMismatch(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 600, 64, 29)
	s, err := dsidx.NewSharded(coll, dsidx.WithShards(2), dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	path := filepath.Join(t.TempDir(), "idx.dss")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dsidx.OpenSharded(path, coll); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("sharded corruption surfaced as %v, want storage.ErrCorrupt", err)
	}
}
