package dsidx

import (
	"dsidx/internal/messi"
)

// MESSI is the parallel in-memory index (paper §III, Figure 3). Queries are
// exact; construction and search scale with the number of workers.
type MESSI struct {
	inner *messi.Index
}

// NewMESSI builds a MESSI index over an in-memory collection.
func NewMESSI(coll *Collection, opts ...Option) (*MESSI, error) {
	o := buildOptions(opts)
	inner, err := messi.Build(coll, o.coreConfig(), messi.Options{
		Workers:    o.workers,
		QueueCount: o.queueCount,
	})
	if err != nil {
		return nil, err
	}
	return &MESSI{inner: inner}, nil
}

// Search returns the exact nearest neighbor of q under Euclidean distance.
func (ix *MESSI) Search(q Series) (Match, error) {
	r, _, err := ix.inner.Search(q, 0)
	return matchOf(r), err
}

// SearchWithWorkers is Search with an explicit worker count (for scaling
// studies).
func (ix *MESSI) SearchWithWorkers(q Series, workers int) (Match, error) {
	r, _, err := ix.inner.Search(q, workers)
	return matchOf(r), err
}

// SearchKNN returns the exact k nearest neighbors of q in ascending
// distance order.
func (ix *MESSI) SearchKNN(q Series, k int) ([]Match, error) {
	rs, _, err := ix.inner.SearchKNN(q, k, 0)
	return matchesOf(rs), err
}

// SearchDTW returns the exact nearest neighbor of q under dynamic time
// warping with a Sakoe-Chiba band of half-width window, answered on the
// same index with no rebuild (paper §V).
func (ix *MESSI) SearchDTW(q Series, window int) (Match, error) {
	r, _, err := ix.inner.SearchDTW(q, window, 0)
	return matchOf(r), err
}

// SearchApproximate returns the classic iSAX approximate answer: the best
// series of the single leaf matching the query's summary, in microseconds.
// Its distance is an upper bound on the exact answer's distance.
func (ix *MESSI) SearchApproximate(q Series) (Match, error) {
	r, err := ix.inner.SearchApproximate(q)
	return matchOf(r), err
}

// Stats returns the index tree shape.
func (ix *MESSI) Stats() IndexStats { return statsOf(ix.inner.Tree()) }

// Len returns the number of indexed series.
func (ix *MESSI) Len() int { return ix.inner.Count() }
