package dsidx

import (
	"context"

	"dsidx/internal/engine"
	"dsidx/internal/messi"
)

// MESSI is the parallel in-memory index (paper §III, Figure 3). Queries are
// exact; construction and search scale with the number of workers.
//
// The index owns a persistent worker pool shared by every in-flight query:
// all Search variants are safe for concurrent use from any number of
// goroutines, and BatchSearch / Serve multiplex many queries onto the pool
// with admission control. Close releases the pool's goroutines; an unclosed
// index releases them when garbage-collected.
//
// The index also accepts live writes: Append and AppendBatch add series
// while queries run. New series land in a delta buffer (summarized on
// arrival, exact-scanned by queries, so answers stay exact), and a
// background merge — scheduled on the same worker pool once the buffer
// reaches WithMergeThreshold — folds them into the tree without blocking
// readers. IngestStats exposes the write path's counters; Flush forces a
// synchronous merge.
type MESSI struct {
	inner *messi.Index
}

// NewMESSI builds a MESSI index over an in-memory collection.
func NewMESSI(coll *Collection, opts ...Option) (*MESSI, error) {
	o := buildOptions(opts)
	inner, err := messi.Build(coll, o.coreConfig(), messi.Options{
		Workers:        o.workers,
		QueueCount:     o.queueCount,
		MaxInFlight:    o.maxInFlight,
		MergeThreshold: o.mergeThreshold,
		ProbeLeaves:    o.probeLeaves,
		DisableLeafRaw: o.leafRawOff,
		AutoTune:       o.autoTune,
	})
	if err != nil {
		return nil, err
	}
	return &MESSI{inner: inner}, nil
}

// Close stops the index's worker pool. It is idempotent and safe to call
// with queries in flight; queries issued after Close still answer
// correctly, executing serially on the calling goroutine.
func (ix *MESSI) Close() { ix.inner.Close() }

// Search returns the exact nearest neighbor of q under Euclidean distance.
func (ix *MESSI) Search(q Series) (Match, error) {
	r, _, err := ix.inner.Search(q, 0)
	return matchOf(r), err
}

// SearchWithWorkers is Search with an explicit worker count (for scaling
// studies).
func (ix *MESSI) SearchWithWorkers(q Series, workers int) (Match, error) {
	r, _, err := ix.inner.Search(q, workers)
	return matchOf(r), err
}

// SearchKNN returns the exact k nearest neighbors of q in ascending
// distance order.
func (ix *MESSI) SearchKNN(q Series, k int) ([]Match, error) {
	rs, _, err := ix.inner.SearchKNN(q, k, 0)
	return matchesOf(rs), err
}

// SearchDTW returns the exact nearest neighbor of q under dynamic time
// warping with a Sakoe-Chiba band of half-width window, answered on the
// same index with no rebuild (paper §V).
func (ix *MESSI) SearchDTW(q Series, window int) (Match, error) {
	r, _, err := ix.inner.SearchDTW(q, window, 0)
	return matchOf(r), err
}

// SearchApproximate returns the classic iSAX approximate answer: the best
// series of the single leaf matching the query's summary, in microseconds.
// Its distance is an upper bound on the exact answer's distance.
func (ix *MESSI) SearchApproximate(q Series) (Match, error) {
	r, err := ix.inner.SearchApproximate(q)
	return matchOf(r), err
}

// SearchWindow returns the exact nearest neighbor of q among the most
// recent n appended-or-built series — a sliding-window query. The window is
// a consistent suffix captured at call time: series landing mid-query are
// invisible, deleted series are skipped, and a window wider than everything
// landed degenerates to Search.
func (ix *MESSI) SearchWindow(q Series, n int) (Match, error) {
	r, _, err := ix.inner.SearchWindow(q, n, 0)
	return matchOf(r), err
}

// SearchTenant is Search under an opaque tenant ID: the query is accounted
// to the tenant, and under multi-tenant load its worker share is the
// tenant's slice of the pool rather than the whole of it. Tenant "" is
// exactly Search.
func (ix *MESSI) SearchTenant(q Series, tenant string) (Match, error) {
	r, _, err := ix.inner.SearchScoped(q, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchKNNTenant is SearchKNN under an opaque tenant ID.
func (ix *MESSI) SearchKNNTenant(q Series, k int, tenant string) ([]Match, error) {
	rs, _, err := ix.inner.SearchKNNScoped(q, k, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchesOf(rs), err
}

// SearchDTWTenant is SearchDTW under an opaque tenant ID.
func (ix *MESSI) SearchDTWTenant(q Series, window int, tenant string) (Match, error) {
	r, _, err := ix.inner.SearchDTWScoped(q, window, 0, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchApproximateTenant is SearchApproximate under an opaque tenant ID.
func (ix *MESSI) SearchApproximateTenant(q Series, tenant string) (Match, error) {
	r, err := ix.inner.SearchApproximateScoped(q, messi.Scope{AppendCut: -1, Tenant: tenant})
	return matchOf(r), err
}

// SearchWindowTenant is SearchWindow under an opaque tenant ID.
func (ix *MESSI) SearchWindowTenant(q Series, n int, tenant string) (Match, error) {
	r, _, err := ix.inner.SearchWindowTenant(q, n, 0, tenant)
	return matchOf(r), err
}

// Stats returns the index tree shape.
func (ix *MESSI) Stats() IndexStats { return statsOf(ix.inner.Tree()) }

// Len returns the number of indexed series, including live appends.
func (ix *MESSI) Len() int { return ix.inner.Count() }

// Append adds one series to the serving index and returns its position
// (positions continue past the build-time collection). The series becomes
// visible to queries before Append returns; a background merge folds it
// into the index tree later. Safe for concurrent use with queries, other
// appends, Flush, Save and Close.
func (ix *MESSI) Append(s Series) (int, error) { return ix.inner.Append(s) }

// AppendBatch adds a batch of series at consecutive positions, returning
// the position of the first. The batch becomes visible atomically: a
// concurrent query sees either none or all of it.
func (ix *MESSI) AppendBatch(ss []Series) (int, error) { return ix.inner.AppendBatch(ss) }

// Flush synchronously merges every series appended before the call into
// the index tree. Queries do not require it — unmerged series are already
// searched exactly — so Flush is about merge timing (e.g. before Save, or
// to bound per-query delta-scan cost ahead of a traffic spike).
func (ix *MESSI) Flush() { ix.inner.Flush() }

// Delete removes the series at position pos from every future search: it
// is tombstoned immediately (no search flavor can return it from the
// moment Delete returns) and physically dropped from the tree by the next
// merge or Compact. Positions are never reused. Reports whether this call
// newly deleted it; deleting a deleted position is a no-op.
func (ix *MESSI) Delete(pos int) (bool, error) { return ix.inner.Delete(pos) }

// DeleteRange deletes every series at positions [lo, hi), returning how
// many this call newly deleted. The range must lie within [0, Len()].
func (ix *MESSI) DeleteRange(lo, hi int) (int, error) { return ix.inner.DeleteRange(lo, hi) }

// AppendWithTTL is Append with an expiry deadline attached: once a later
// ExpireBefore(now) observes now at or past the deadline, the series is
// deleted exactly as by Delete. Deadlines are opaque int64s — wall-clock
// nanoseconds, a logical epoch, whatever the caller's clock produces; the
// index never reads a clock itself.
func (ix *MESSI) AppendWithTTL(s Series, deadline int64) (int, error) {
	return ix.inner.AppendWithTTL(s, deadline)
}

// SetTTL sets (or replaces) the expiry deadline on the series at position
// pos; a deadline already past still requires an ExpireBefore call to take
// effect.
func (ix *MESSI) SetTTL(pos int, deadline int64) error { return ix.inner.SetTTL(pos, deadline) }

// ExpireBefore deletes every series whose TTL deadline is at or before
// now, returning how many it newly deleted. The caller owns the clock:
// call it from a ticker for wall-clock TTLs, or at logical epoch
// boundaries.
func (ix *MESSI) ExpireBefore(now int64) int { return ix.inner.ExpireBefore(now) }

// Tombstoned counts deleted (or expired) series; Live counts the rest.
// Len stays the full position space: Len() == Live() + Tombstoned().
func (ix *MESSI) Tombstoned() int { return ix.inner.Tombstoned() }

// Live counts landed-and-not-deleted series.
func (ix *MESSI) Live() int { return ix.inner.Live() }

// Compact synchronously flushes pending appends and rebuilds the index
// tree without its tombstoned entries, reclaiming their tree residency.
// Searches never require it — tombstoned series are filtered either way —
// and it is safe to call concurrently with queries and appends.
func (ix *MESSI) Compact() { ix.inner.Compact() }

// IngestStats is a snapshot of the live-ingestion counters.
type IngestStats struct {
	// Appended counts series accepted by Append/AppendBatch since the
	// index was created or loaded.
	Appended uint64
	// Pending is the current delta-buffer size: appended series not yet
	// merged into the tree (queries exact-scan them in the meantime).
	Pending int
	// Merged is the number of appended series the tree covers.
	Merged int
	// Merges counts completed background/Flush merge cycles;
	// SnapshotSwaps counts tree-snapshot publications (one per merge
	// cycle that installed a new tree).
	Merges        uint64
	SnapshotSwaps uint64
	// MergeThreshold is the live delta size that triggers a background
	// merge (the WithMergeThreshold option, possibly moved by
	// WithAutoTune).
	MergeThreshold int
	// Live and Tombstoned partition the landed series (base plus appends)
	// into searchable and deleted/expired.
	Live       int
	Tombstoned int
}

// ingestStatsOf mirrors the internal snapshot into the public type.
func ingestStatsOf(st messi.IngestStats) IngestStats {
	return IngestStats{
		Appended:       st.Appended,
		Pending:        st.Pending,
		Merged:         st.Merged,
		Merges:         st.Merges,
		SnapshotSwaps:  st.SnapshotSwaps,
		MergeThreshold: st.MergeThreshold,
		Live:           st.Live,
		Tombstoned:     st.Tombstoned,
	}
}

// IngestStats snapshots the write path's counters.
func (ix *MESSI) IngestStats() IngestStats {
	return ingestStatsOf(ix.inner.IngestStats())
}

// BatchSearch answers one exact 1-NN query per element of qs, running them
// concurrently on the shared worker pool under admission control. The
// result at index i answers qs[i]. Results are identical to issuing each
// query through Search serially.
func (ix *MESSI) BatchSearch(qs []Series) ([]Match, error) {
	rs, err := ix.inner.BatchSearch(qs)
	return matchesOf(rs), err
}

// SearchStats reports the work one query performed — the pruning behavior
// behind its latency. Lower RawDistances relative to Observed means the
// index discarded more of the collection without touching raw values.
type SearchStats struct {
	// ProbeLeaves is the number of leaves the approximate phase probed to
	// seed the best-so-far (the WithProbeLeaves option).
	ProbeLeaves int
	// LeavesInserted counts leaves that survived tree pruning;
	// LeavesPopped counts those actually examined afterwards.
	LeavesInserted int
	LeavesPopped   int
	// EntriesChecked counts per-series lower bounds computed.
	EntriesChecked int
	// RawDistances counts exact distances computed, approximate phase
	// included.
	RawDistances int
	// Observed is the number of series the query answered over (base
	// collection plus published appends at query start).
	Observed int
	// UncoveredShards lists the shards a partial-results query (a Sharded
	// index with WithAllowPartial) could not cover; empty whenever the
	// answer is complete, and always empty on an unsharded index.
	UncoveredShards []int
}

func statsFromQuery(st messi.QueryStats) SearchStats {
	return SearchStats{
		ProbeLeaves:     st.ProbeLeaves,
		LeavesInserted:  st.LeavesInserted,
		LeavesPopped:    st.LeavesPopped,
		EntriesChecked:  st.EntriesChecked,
		RawDistances:    st.RawDistances,
		Observed:        st.Observed,
		UncoveredShards: st.UncoveredShards,
	}
}

// BatchSearchStats is BatchSearch additionally returning each query's work
// stats, so batched workloads can report pruning ratios the same way
// single-query experiments do. stats[i] describes the query that produced
// results[i].
func (ix *MESSI) BatchSearchStats(qs []Series) ([]Match, []SearchStats, error) {
	rs, sts, err := ix.inner.BatchSearchStats(qs)
	stats := make([]SearchStats, len(sts))
	for i, st := range sts {
		stats[i] = statsFromQuery(st)
	}
	return matchesOf(rs), stats, err
}

// EngineStats is a snapshot of the shared worker pool's throughput
// counters.
type EngineStats struct {
	// Workers is the pool size (tasks executing at any instant ≤ Workers).
	Workers int
	// PendingTasks is the current depth of the shared run queue.
	PendingTasks int
	// InFlight is the number of queries currently admitted by
	// BatchSearch/Serve; PeakInFlight is its high-water mark.
	InFlight     int
	PeakInFlight int
	// Queries counts queries executed since the index was built — through
	// any entry path, direct Search calls included, not only admitted
	// BatchSearch/Serve traffic. Tasks counts pool tasks executed.
	// Sampling Queries across an interval yields throughput (QPS).
	Queries uint64
	Tasks   uint64
	// Saturation counters: AdmitWaits counts admissions that blocked on a
	// full in-flight budget, AdmitWaitNanos their total blocked time, and
	// SubmitFallbacks optional pool tasks dropped because the run queue
	// was full. Together they say whether the pool is the bottleneck.
	AdmitWaits      uint64
	AdmitWaitNanos  uint64
	SubmitFallbacks uint64
	// Containment counters: TaskPanics counts pool tasks whose panic was
	// caught at the worker boundary, BgPanics background jobs (merges)
	// whose panic was caught. Nonzero values mean queries failed with
	// typed errors instead of crashing the process — inspect Health for
	// the query-level view.
	TaskPanics uint64
	BgPanics   uint64
}

// engineStatsOf mirrors the internal snapshot into the public type.
func engineStatsOf(st engine.Stats) EngineStats {
	return EngineStats{
		Workers:         st.Workers,
		PendingTasks:    st.PendingTasks,
		InFlight:        st.InFlight,
		PeakInFlight:    st.PeakInFlight,
		Queries:         st.Queries,
		Tasks:           st.Tasks,
		AdmitWaits:      st.AdmitWaits,
		AdmitWaitNanos:  st.AdmitWaitNanos,
		SubmitFallbacks: st.SubmitFallbacks,
		TaskPanics:      st.TaskPanics,
		BgPanics:        st.BgPanics,
	}
}

// Health is an index's liveness snapshot: how many queries ran, how many
// failed with a contained error instead of crashing, and how many
// background merges were abandoned after a contained panic. A healthy
// index reports zeros everywhere but Searches.
type Health struct {
	// Searches counts exact/approximate searches started;
	// FailedSearches the subset that returned an error.
	Searches       uint64
	FailedSearches uint64
	// MergeAborts counts background merges abandoned because a task
	// panicked; the delta buffer stays searchable and the next append or
	// Flush retries.
	MergeAborts uint64
	// TaskPanics and BgPanics are the worker pool's containment counters
	// (see EngineStats).
	TaskPanics uint64
	BgPanics   uint64
	// Live and Tombstoned partition the landed series into searchable and
	// deleted/expired.
	Live       int
	Tombstoned int
}

// Health snapshots the index's failure counters. Safe to call concurrently
// with queries and appends.
func (ix *MESSI) Health() Health {
	h := ix.inner.Health()
	return Health{
		Searches:       h.Searches,
		FailedSearches: h.FailedSearches,
		MergeAborts:    h.MergeAborts,
		TaskPanics:     h.TaskPanics,
		BgPanics:       h.BgPanics,
		Live:           h.Live,
		Tombstoned:     h.Tombstoned,
	}
}

// TenantStats is one tenant's scheduling-and-throughput snapshot.
type TenantStats struct {
	// Tenant is the opaque ID supplied on Search*Tenant calls or
	// QueryRequest.Tenant.
	Tenant string
	// InFlight and ActiveQueries are the tenant's currently admitted and
	// currently executing query counts.
	InFlight      int
	ActiveQueries int
	// Queries counts the tenant's lifetime queries; AdmitWaits its
	// admissions that blocked on the tenant's own fairness gate.
	Queries    uint64
	AdmitWaits uint64
}

// tenantStatsOf mirrors the engine's per-tenant snapshot.
func tenantStatsOf(ts []engine.TenantStat) []TenantStats {
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = TenantStats{
			Tenant:        t.Tenant,
			InFlight:      t.InFlight,
			ActiveQueries: t.ActiveQueries,
			Queries:       t.Queries,
			AdmitWaits:    t.AdmitWaits,
		}
	}
	return out
}

// TenantStats snapshots every tenant ever seen, sorted by ID; untenanted
// traffic never appears. Empty until the first tenanted call.
func (ix *MESSI) TenantStats() []TenantStats { return tenantStatsOf(ix.inner.TenantStats()) }

// EngineStats snapshots the worker pool's counters. Sample it periodically
// to derive throughput.
func (ix *MESSI) EngineStats() EngineStats {
	return engineStatsOf(ix.inner.EngineStats())
}

// Serve turns the index into a long-running query server: it answers
// requests from in until in closes or ctx is canceled, then closes the
// returned channel. Up to MaxInFlight requests are answered concurrently on
// the shared worker pool, so responses arrive in completion order — match
// them to requests by ID. Serve may be called multiple times; all serving
// loops share the same pool and admission budget.
//
// Every request Serve dequeues from in produces exactly one response, Err
// set when cancellation preempted it; drain the returned channel until it
// closes to balance submissions against answers after a shutdown.
func (ix *MESSI) Serve(ctx context.Context, in <-chan QueryRequest) <-chan QueryResponse {
	return serve(ctx, in, ix)
}

// admitContext and maxInFlight adapt the index to the shared serving loop.
func (ix *MESSI) admitContext(ctx context.Context, tenant string) (func(), error) {
	return ix.inner.AdmitTenantContext(ctx, tenant)
}
func (ix *MESSI) maxInFlight() int { return ix.inner.MaxInFlight() }
