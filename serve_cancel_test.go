package dsidx_test

// Regression test for the serve-loop cancellation contract: every request
// dequeued from the input channel must produce exactly one QueryResponse,
// even when the serving context is canceled mid-flight. The pre-fix loop
// raced the response send against ctx.Done() (dropping a computed answer
// about half the time a reader and cancellation were both ready) and
// returned without any response when cancellation preempted admission.

import (
	"context"
	"sync"
	"testing"

	"dsidx"
)

// TestServeCancellationLosesNoDequeuedRequests submits queries over an
// unbuffered channel — so a successful send IS a dequeue by the serve
// loop — cancels mid-stream, and balances the books: responses drained
// until close must equal requests accepted before the producer stopped.
func TestServeCancellationLosesNoDequeuedRequests(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 500, 64, 17)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	queries := dsidx.GenerateQueries(dsidx.Synthetic, 4, 64, 17)

	rounds := 25
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		in := make(chan dsidx.QueryRequest) // unbuffered: send == dequeue
		out := idx.Serve(ctx, in)

		var sent int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := int64(0); ; id++ {
				req := dsidx.QueryRequest{ID: id, Query: queries.At(int(id) % queries.Len())}
				if id%3 == 0 {
					req.Kind = dsidx.QueryApprox
				}
				select {
				case in <- req:
					sent++
				case <-ctx.Done():
					return
				}
			}
		}()

		// Drain until the serve loop shuts down, canceling mid-stream so
		// some dequeued requests are still in flight at that moment.
		var got, errored int64
		for resp := range out {
			got++
			if got == 3 {
				cancel()
			}
			if resp.Err != nil {
				errored++
			} else if len(resp.Matches) != 1 {
				t.Fatalf("round %d: response %d has %d matches", round, resp.ID, len(resp.Matches))
			}
		}
		wg.Wait() // out closed => ctx canceled => producer has exited
		cancel()
		if got != sent {
			t.Fatalf("round %d: %d requests dequeued but only %d responses received (%d errored)",
				round, sent, got, errored)
		}
	}
}
