package dsidx

import (
	"dsidx/internal/paris"
	"dsidx/internal/storage"
)

// ParIS is the parallel on-disk index family (paper §III, Figure 2). The
// Plus variant (ParIS+) overlaps all tree-construction CPU work with the
// coordinator's disk reads, fully masking CPU cost during creation.
type ParIS struct {
	inner *paris.Index
}

// NewParIS builds the index over an on-disk collection using the ParIS
// creation algorithm.
func NewParIS(dc *DiskCollection, opts ...Option) (*ParIS, error) {
	return newParISDisk(dc, paris.ModeParIS, opts)
}

// NewParISPlus builds the index over an on-disk collection using the
// ParIS+ creation algorithm (I/O-masked CPU).
func NewParISPlus(dc *DiskCollection, opts ...Option) (*ParIS, error) {
	return newParISDisk(dc, paris.ModeParISPlus, opts)
}

func newParISDisk(dc *DiskCollection, mode paris.Mode, opts []Option) (*ParIS, error) {
	o := buildOptions(opts)
	inner, err := paris.Build(dc.file, storage.NewLeafStore(dc.disk), o.coreConfig(), paris.Options{
		Mode:        mode,
		Workers:     o.workers,
		BatchSeries: o.batchSeries,
	})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// NewParISInMemory builds the in-memory ParIS variant over a RAM collection
// (the comparator of the paper's Figures 7, 9 and 12).
func NewParISInMemory(coll *Collection, opts ...Option) (*ParIS, error) {
	o := buildOptions(opts)
	inner, err := paris.BuildInMemory(coll, o.coreConfig(), paris.Options{
		Mode:    paris.ModeParIS,
		Workers: o.workers,
	})
	if err != nil {
		return nil, err
	}
	return &ParIS{inner: inner}, nil
}

// Search returns the exact nearest neighbor of q under Euclidean distance,
// using the index's configured parallelism.
func (ix *ParIS) Search(q Series) (Match, error) {
	r, _, err := ix.inner.Search(q, 0)
	return matchOf(r), err
}

// SearchWithWorkers is Search with an explicit worker count.
func (ix *ParIS) SearchWithWorkers(q Series, workers int) (Match, error) {
	r, _, err := ix.inner.Search(q, workers)
	return matchOf(r), err
}

// SearchKNN returns the exact k nearest neighbors of q in ascending
// distance order.
func (ix *ParIS) SearchKNN(q Series, k int) ([]Match, error) {
	rs, _, err := ix.inner.SearchKNN(q, k, 0)
	return matchesOf(rs), err
}

// SearchDTW returns the exact nearest neighbor of q under dynamic time
// warping with a Sakoe-Chiba band of half-width window, answered on the
// unchanged index (paper §V).
func (ix *ParIS) SearchDTW(q Series, window int) (Match, error) {
	r, _, err := ix.inner.SearchDTW(q, window, 0)
	return matchOf(r), err
}

// SearchApproximate returns the classic iSAX approximate answer (one
// random read on disk); its distance upper-bounds the exact answer's.
func (ix *ParIS) SearchApproximate(q Series) (Match, error) {
	r, err := ix.inner.SearchApproximate(q)
	return matchOf(r), err
}

// Stats returns the index tree shape.
func (ix *ParIS) Stats() IndexStats { return statsOf(ix.inner.Tree()) }

// Len returns the number of indexed series.
func (ix *ParIS) Len() int { return ix.inner.Count() }
