package dsidx_test

import (
	"context"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dsidx"
	"dsidx/internal/metrics"
)

// scrape fetches one exposition from the index's metrics handler and
// parses it, failing the test on any malformed output.
func scrape(t *testing.T, src dsidx.MetricsSource) (string, map[string]metrics.Family) {
	t.Helper()
	rec := httptest.NewRecorder()
	dsidx.MetricsHandler(src).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	res := rec.Result()
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("scrape status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Parse(string(body))
	if err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, body)
	}
	return string(body), fams
}

// sampleValues extracts the values of every sample line of one family
// from an exposition, labeled series included.
func sampleValues(t *testing.T, text, family string) []float64 {
	t.Helper()
	var vals []float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	return vals
}

func TestShardedMetricsSnapshotAndScrape(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 1200, 64, 21)
	idx, err := dsidx.NewSharded(coll, dsidx.WithShards(2), dsidx.WithWorkers(2), dsidx.WithAutoTune(true))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	extra := dsidx.Generate(dsidx.Synthetic, 30, 64, 22)
	for i := 0; i < extra.Len(); i++ {
		if _, err := idx.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	queries := dsidx.GenerateQueries(dsidx.Synthetic, 4, 64, 21)
	qs := make([]dsidx.Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	if _, err := idx.BatchSearch(qs); err != nil {
		t.Fatal(err)
	}

	m := idx.Metrics()
	if m.Engine.Queries == 0 || m.Engine.Workers != 2 {
		t.Fatalf("engine section: %+v", m.Engine)
	}
	if m.Ingest.Appended != 30 {
		t.Fatalf("ingest section: %+v", m.Ingest)
	}
	if !m.Tuning.AutoTune || m.Tuning.ProbeLeaves <= 0 || m.Tuning.MergeThreshold <= 0 {
		t.Fatalf("tuning section: %+v", m.Tuning)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("got %d shard sections", len(m.Shards))
	}
	base, appends := 0, 0
	for si, sh := range m.Shards {
		if sh.Shard != si {
			t.Fatalf("shard %d labeled %d", si, sh.Shard)
		}
		base += sh.BaseSeries
		appends += sh.Appends
	}
	if base != coll.Len() || appends != 30 {
		t.Fatalf("shard sections cover %d base, %d appends; want %d, 30", base, appends, coll.Len())
	}
	if m.Cold != (dsidx.ColdTierStats{}) {
		t.Fatalf("all-hot index reported cold stats: %+v", m.Cold)
	}

	text, fams := scrape(t, idx)
	for _, want := range []string{
		"dsidx_engine_workers", "dsidx_engine_queries_total", "dsidx_engine_tasks_total",
		"dsidx_engine_admit_waits_total", "dsidx_engine_submit_fallbacks_total",
		"dsidx_ingest_appended_total", "dsidx_ingest_pending", "dsidx_ingest_merges_total",
		"dsidx_ingest_snapshot_swaps_total",
		"dsidx_index_queries_total", "dsidx_index_query_seconds",
		"dsidx_tuning_autotune", "dsidx_tuning_probe_leaves",
		"dsidx_shards", "dsidx_shard_base_series", "dsidx_shard_appends_total",
		"dsidx_cold_shards", "dsidx_cold_cache_hits_total", "dsidx_cold_device_reads_total",
		"dsidx_vector_simd",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("scrape lacks family %s", want)
		}
	}
	if !strings.Contains(text, `shard="0"`) || !strings.Contains(text, `shard="1"`) {
		t.Fatalf("scrape lacks per-shard labels:\n%s", text)
	}
	// The exposition and the structured snapshot must agree on totals.
	var appended float64
	for _, v := range sampleValues(t, text, "dsidx_ingest_appended_total") {
		appended += v
	}
	if appended != 30 {
		t.Fatalf("scraped appended %v, want 30", appended)
	}
}

func TestMESSIMetricsSnapshotAndScrape(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 600, 64, 23)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.Search(dsidx.GenerateQueries(dsidx.Synthetic, 1, 64, 23).At(0)); err != nil {
		t.Fatal(err)
	}
	m := idx.Metrics()
	if m.Engine.Queries == 0 || m.Shards != nil || m.Tuning.AutoTune {
		t.Fatalf("MESSI metrics: %+v", m)
	}
	_, fams := scrape(t, idx)
	for _, want := range []string{
		"dsidx_engine_queries_total", "dsidx_ingest_appended_total",
		"dsidx_index_query_seconds", "dsidx_tuning_autotune",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("scrape lacks family %s", want)
		}
	}
}

// TestVectorImplExposure pins the three surfaces that report which
// distance-kernel implementation serves queries — VectorImpl(), the
// Metrics snapshot, and the dsidx_vector_simd gauge — and that the
// ForceScalarKernels escape hatch moves all three together without
// changing answers.
func TestVectorImplExposure(t *testing.T) {
	defer dsidx.ForceScalarKernels(false)
	coll := dsidx.Generate(dsidx.Synthetic, 400, 64, 27)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 64, 27).At(0)

	impl := dsidx.VectorImpl()
	if impl != "avx2" && impl != "scalar" {
		t.Fatalf("VectorImpl() = %q", impl)
	}
	if m := idx.Metrics(); m.VectorImpl != impl {
		t.Fatalf("Metrics().VectorImpl = %q, VectorImpl() = %q", m.VectorImpl, impl)
	}
	text, fams := scrape(t, idx)
	if _, ok := fams["dsidx_vector_simd"]; !ok {
		t.Fatal("scrape lacks dsidx_vector_simd")
	}
	gauge := sampleValues(t, text, "dsidx_vector_simd")
	wantGauge := 0.0
	if impl == "avx2" {
		wantGauge = 1
	}
	if len(gauge) != 1 || gauge[0] != wantGauge {
		t.Fatalf("dsidx_vector_simd = %v with impl %q", gauge, impl)
	}

	fast, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	dsidx.ForceScalarKernels(true)
	if got := dsidx.VectorImpl(); got != "scalar" {
		t.Fatalf("VectorImpl() = %q under ForceScalarKernels", got)
	}
	if m := idx.Metrics(); m.VectorImpl != "scalar" {
		t.Fatalf("Metrics().VectorImpl = %q under ForceScalarKernels", m.VectorImpl)
	}
	text, _ = scrape(t, idx)
	if g := sampleValues(t, text, "dsidx_vector_simd"); len(g) != 1 || g[0] != 0 {
		t.Fatalf("dsidx_vector_simd = %v under ForceScalarKernels", g)
	}
	slow, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Pos != slow.Pos || fast.Distance != slow.Distance {
		t.Fatalf("answers differ across implementations: %+v vs %+v", fast, slow)
	}
}

// TestMetricsScrapeWhileServing hammers the handler while the index
// serves queries and ingests appends (run with -race): scrapes must stay
// parseable and the counters they report must never regress.
func TestMetricsScrapeWhileServing(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 800, 64, 25)
	idx, err := dsidx.NewSharded(coll, dsidx.WithShards(2), dsidx.WithWorkers(2),
		dsidx.WithAutoTune(true), dsidx.WithMergeThreshold(64))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	queries := dsidx.GenerateQueries(dsidx.Synthetic, 4, 64, 25)
	extra := dsidx.Generate(dsidx.Synthetic, 64, 64, 26)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan dsidx.QueryRequest)
	out := idx.Serve(ctx, in)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // submitter
		defer wg.Done()
		for id := int64(0); ; id++ {
			select {
			case in <- dsidx.QueryRequest{ID: id, Query: queries.At(int(id) % queries.Len())}:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { // appender
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if _, err := idx.Append(extra.At(i % extra.Len())); err != nil {
				panic(err)
			}
		}
	}()
	go func() { // drainer
		for range out {
		}
	}()

	scrapes := 20
	if testing.Short() {
		scrapes = 5
	}
	var prevQueries float64
	for k := 0; k < scrapes; k++ {
		text, fams := scrape(t, idx)
		if fams["dsidx_engine_queries_total"].Samples != 1 {
			t.Fatalf("scrape %d: %d samples for engine queries", k, fams["dsidx_engine_queries_total"].Samples)
		}
		q := sampleValues(t, text, "dsidx_engine_queries_total")
		if len(q) != 1 {
			t.Fatalf("scrape %d: %d values for engine queries", k, len(q))
		}
		if q[0] < prevQueries {
			t.Fatalf("scrape %d: queries regressed %v -> %v", k, prevQueries, q[0])
		}
		prevQueries = q[0]
	}
	cancel()
	for range out {
	}
	wg.Wait()
}
