package dsidx_test

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus per-operation microbenchmarks.
//
// The figure benches delegate to internal/experiments (the same code
// cmd/dsbench runs) at a reduced default scale so `go test -bench=.` stays
// practical; set DSIDX_BENCH_SERIES (e.g. 200000) to run the figures at
// paper-reproduction scale, as recorded in EXPERIMENTS.md. Each bench logs
// the regenerated table, so -v output contains the figure itself.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dsidx"
	"dsidx/internal/core"
	"dsidx/internal/experiments"
	"dsidx/internal/gen"
	"dsidx/internal/messi"
	"dsidx/internal/paris"
	"dsidx/internal/series"
	"dsidx/internal/ucr"
	"dsidx/internal/vector"
)

func benchConfig() experiments.Config {
	n := 20_000
	if env := os.Getenv("DSIDX_BENCH_SERIES"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			n = v
		}
	}
	return experiments.Config{SeriesCount: n, QueryCount: 2, Seed: 2020, MaxCores: 24}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			if _, err := tbl.WriteTo(&sb); err != nil {
				b.Fatal(err)
			}
			b.Logf("\n%s", sb.String())
		}
	}
}

// One benchmark per figure of the paper's evaluation (§IV).

func BenchmarkFig4IndexCreationParIS(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5IndexCreationMESSI(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6CreationByDataset(b *testing.B)   { benchFigure(b, "fig6") }
func BenchmarkFig7InMemoryCreation(b *testing.B)    { benchFigure(b, "fig7") }
func BenchmarkFig8ParISPlusQueryDisk(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9MESSIQueryScaling(b *testing.B)   { benchFigure(b, "fig9") }
func BenchmarkFig10QueryHDD(b *testing.B)           { benchFigure(b, "fig10") }
func BenchmarkFig11QuerySSD(b *testing.B)           { benchFigure(b, "fig11") }
func BenchmarkFig12QueryInMemory(b *testing.B)      { benchFigure(b, "fig12") }
func BenchmarkAblationQueueCount(b *testing.B)      { benchFigure(b, "ablation-queues") }
func BenchmarkAblationBufferPartition(b *testing.B) { benchFigure(b, "ablation-buffers") }
func BenchmarkAblationLeafCapacity(b *testing.B)    { benchFigure(b, "ablation-leafcap") }

// Kernel ablation (vectorized vs scalar distances) as native Go benches.

func benchVectors(b *testing.B, n int) ([]float32, []float32) {
	b.Helper()
	g := gen.Generator{Kind: gen.Synthetic, Length: n, Seed: 5}
	return g.Series(0), g.Series(1)
}

func BenchmarkAblationVectorKernelsScalar(b *testing.B) {
	x, y := benchVectors(b, 256)
	b.SetBytes(256 * 4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vector.ScalarSquaredED(x, y)
	}
	_ = sink
}

func BenchmarkAblationVectorKernelsUnrolled(b *testing.B) {
	x, y := benchVectors(b, 256)
	b.SetBytes(256 * 4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vector.SquaredEDUnrolled(x, y)
	}
	_ = sink
}

func BenchmarkEarlyAbandonED(b *testing.B) {
	x, y := benchVectors(b, 256)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vector.SquaredEDEarlyAbandon(x, y, 1.0)
	}
	_ = sink
}

// Per-operation benches on the core data structures.

func benchCollection(b *testing.B, n int) *series.Collection {
	b.Helper()
	return gen.Generator{Kind: gen.Synthetic, Seed: 9}.Collection(n)
}

func BenchmarkSummarize(b *testing.B) {
	coll := benchCollection(b, 1000)
	tree, err := core.NewTree(core.Config{SeriesLen: 256})
	if err != nil {
		b.Fatal(err)
	}
	sm := core.NewSummarizer(tree.Config(), tree.Quantizer())
	dst := make([]uint8, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Summarize(coll.At(i%coll.Len()), dst)
	}
}

func BenchmarkMESSIBuild(b *testing.B) {
	coll := benchCollection(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := messi.Build(coll, core.Config{}, messi.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
	}
}

func BenchmarkMESSIQuery(b *testing.B) {
	coll := benchCollection(b, 50_000)
	ix, err := messi.Build(coll, core.Config{}, messi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 16, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(queries.At(i%queries.Len()), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMESSIConcurrentQPS is the serving-engine throughput baseline:
// b.N queries answered with a fixed number in flight on the index's shared
// worker pool. The queries/s metric across the 1/4/16 sweep is the number
// future scheduler/scratch changes are measured against; single-query
// latency is (elapsed × inflight)/N.
func BenchmarkMESSIConcurrentQPS(b *testing.B) {
	coll := benchCollection(b, 50_000)
	ix, err := messi.Build(coll, core.Config{}, messi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 64, 0.05)
	for _, inflight := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("inflight-%d", inflight), func(b *testing.B) {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < inflight; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := cursor.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						if _, _, err := ix.Search(queries.At(int(i)%queries.Len()), 0); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkMESSIBatchSearch measures the one-call batch path (admission
// control included), complementing the explicit-goroutine sweep above.
func BenchmarkMESSIBatchSearch(b *testing.B) {
	coll := benchCollection(b, 50_000)
	ix, err := messi.Build(coll, core.Config{}, messi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 32, 0.05)
	qs := make([]series.Series, queries.Len())
	for i := range qs {
		qs[i] = queries.At(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.BatchSearch(qs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(qs))/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkParISInMemoryQuery(b *testing.B) {
	coll := benchCollection(b, 50_000)
	ix, err := paris.BuildInMemory(coll, core.Config{}, paris.Options{})
	if err != nil {
		b.Fatal(err)
	}
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 16, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(queries.At(i%queries.Len()), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUCRParallelScan(b *testing.B) {
	coll := benchCollection(b, 50_000)
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 16, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ucr.ParallelScan(coll, queries.At(i%queries.Len()), 0)
	}
}

func BenchmarkMESSIQueryDTW(b *testing.B) {
	coll := benchCollection(b, 20_000)
	ix, err := messi.Build(coll, core.Config{}, messi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	queries := gen.Generator{Kind: gen.Synthetic, Seed: 9}.PerturbedQueries(coll, 8, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.SearchDTW(queries.At(i%queries.Len()), 16, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Public API end-to-end bench (what a library user experiences).

func BenchmarkPublicAPIQuickstart(b *testing.B) {
	coll := dsidx.Generate(dsidx.Synthetic, 20_000, 256, 42)
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		b.Fatal(err)
	}
	queries := dsidx.GeneratePerturbedQueries(coll, 16, 0.05, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(queries.At(i % queries.Len())); err != nil {
			b.Fatal(err)
		}
	}
}
