package dsidx_test

import (
	"math"
	"path/filepath"
	"testing"

	"dsidx"
)

func TestMESSISaveLoadRoundTrip(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 1500, 256, 21)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "messi.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dsidx.LoadMESSI(path, coll)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded Len %d != %d", loaded.Len(), idx.Len())
	}

	queries := dsidx.GenerateQueries(dsidx.Synthetic, 5, 256, 21)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		a, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Distance-b.Distance) > 1e-9 {
			t.Fatalf("query %d: loaded index answers %v, original %v", qi, b.Distance, a.Distance)
		}
		// k-NN and DTW work on the loaded index too.
		if _, err := loaded.SearchKNN(q, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.SearchDTW(q, 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMESSILoadValidatesCollection(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 500, 256, 22)
	idx, err := dsidx.NewMESSI(coll)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "messi.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	if _, err := dsidx.LoadMESSI(path, dsidx.Generate(dsidx.Synthetic, 400, 256, 22)); err == nil {
		t.Error("mismatched collection size accepted")
	}
	// Wrong length.
	if _, err := dsidx.LoadMESSI(path, dsidx.Generate(dsidx.Synthetic, 500, 128, 22)); err == nil {
		t.Error("mismatched series length accepted")
	}
	// Missing file.
	if _, err := dsidx.LoadMESSI(filepath.Join(t.TempDir(), "nope.dsi"), coll); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParISSaveLoadOnDisk(t *testing.T) {
	coll := dsidx.Generate(dsidx.Seismic, 700, 256, 23)
	dc, err := dsidx.NewSimulatedDisk(coll, dsidx.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := dsidx.NewParISPlus(dc, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "paris.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dsidx.LoadParIS(path, dc)
	if err != nil {
		t.Fatal(err)
	}
	queries := dsidx.GeneratePerturbedQueries(coll, 4, 0.05, 23)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		a, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Distance-b.Distance) > 1e-9 {
			t.Fatalf("query %d: loaded %v != original %v", qi, b.Distance, a.Distance)
		}
		// Approximate search exercises flushed-leaf loading via saved refs.
		if _, err := loaded.SearchApproximate(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParISSaveLoadInMemory(t *testing.T) {
	coll := dsidx.Generate(dsidx.SALD, 600, 0, 24)
	idx, err := dsidx.NewParISInMemory(coll, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "paris-mem.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dsidx.LoadParISInMemory(path, coll)
	if err != nil {
		t.Fatal(err)
	}
	q := dsidx.GenerateQueries(dsidx.SALD, 1, 0, 24).At(0)
	a, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Distance-b.Distance) > 1e-9 {
		t.Fatalf("loaded %v != original %v", b.Distance, a.Distance)
	}
}

func TestParISPublicKNNAndDTW(t *testing.T) {
	coll := dsidx.Generate(dsidx.Synthetic, 800, 256, 25)
	idx, err := dsidx.NewParISInMemory(coll, dsidx.WithLeafCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	q := dsidx.GenerateQueries(dsidx.Synthetic, 1, 256, 25).At(0)
	knn, err := idx.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := dsidx.ScanKNN(coll, q, 5)
	for i := range want {
		if math.Abs(knn[i].Distance-want[i].Distance) > 1e-6 {
			t.Fatalf("rank %d: %v != %v", i, knn[i].Distance, want[i].Distance)
		}
	}
	dtw, err := idx.SearchDTW(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantDTW := dsidx.ScanNearestDTW(coll, q, 10)
	if math.Abs(dtw.Distance-wantDTW.Distance) > 1e-6 {
		t.Fatalf("DTW %v != %v", dtw.Distance, wantDTW.Distance)
	}
	approx, err := idx.SearchApproximate(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := idx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Distance < exact.Distance-1e-9 {
		t.Fatalf("approximate %v below exact %v", approx.Distance, exact.Distance)
	}
}

func TestMESSISaveLoadWithLiveAppends(t *testing.T) {
	// The delta buffer — merged and pending appends alike — must survive
	// Save/Load: appended series exist nowhere but inside the index.
	coll := dsidx.Generate(dsidx.Synthetic, 800, 128, 26)
	idx, err := dsidx.NewMESSI(coll, dsidx.WithLeafCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	extra := dsidx.Generate(dsidx.Synthetic, 300, 128, 27)
	for i := 0; i < 200; i++ {
		if _, err := idx.Append(extra.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	idx.Flush() // first 200 merged into the tree
	batch := make([]dsidx.Series, 100)
	for i := range batch {
		batch[i] = extra.At(200 + i)
	}
	if start, err := idx.AppendBatch(batch); err != nil || start != 1000 {
		t.Fatalf("batch start %d err %v", start, err)
	}
	st := idx.IngestStats()
	if st.Appended != 300 || st.Merged != 200 || st.Pending != 100 {
		t.Fatalf("ingest stats before save: %+v", st)
	}

	path := filepath.Join(t.TempDir(), "messi-live.dsi")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := dsidx.LoadMESSI(path, coll)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != 1100 {
		t.Fatalf("loaded Len %d, want 1100", loaded.Len())
	}
	if lst := loaded.IngestStats(); lst.Pending != 100 || lst.Merged != 200 {
		t.Fatalf("loaded ingest stats: %+v", lst)
	}
	// An appended-and-pending series is its own nearest neighbor in the
	// loaded index, at the position Append reported.
	m, err := loaded.Search(extra.At(250))
	if err != nil {
		t.Fatal(err)
	}
	if m.Pos != 1050 || m.Distance != 0 {
		t.Fatalf("loaded self-query: (#%d, %v)", m.Pos, m.Distance)
	}
	queries := dsidx.GeneratePerturbedQueries(coll, 5, 0.05, 26)
	for qi := 0; qi < queries.Len(); qi++ {
		q := queries.At(qi)
		a, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Pos != b.Pos || a.Distance != b.Distance {
			t.Fatalf("query %d: loaded (#%d, %v) != original (#%d, %v)",
				qi, b.Pos, b.Distance, a.Pos, a.Distance)
		}
	}
}
